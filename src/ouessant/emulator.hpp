// Functional (untimed) emulator of the Ouessant ISA — the golden model
// the cycle-level Controller is differentially tested against.
//
// The emulator executes a Program against a plain memory image and a
// functional RAC callback, tracking FIFO contents at word granularity.
// It reports exactly what the hardware run must produce: the final memory
// image, the number of RAC operations, and whether execution faulted.
// tests/test_fuzz.cpp drives both models with randomized programs and
// compares the results.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "ouessant/program.hpp"
#include "util/fault_info.hpp"

namespace ouessant::core {

struct EmuConfig {
  std::array<u32, 8> banks{};  ///< bank base addresses (byte)
  u32 num_in_fifos = 1;
  u32 num_out_fifos = 1;
  u32 max_steps = 1 << 20;  ///< fuel for runaway loops
};

struct EmuResult {
  bool ok = true;    ///< false when the run faulted
  /// When/where/why execution faulted (FaultInfo::cycle holds the
  /// instruction count at the fault — the untimed model has no clock).
  /// Same shape the Controller and FaultReport use, so differential
  /// tests can compare fault sites directly.
  FaultInfo fault;
  u64 instructions = 0;
  u64 rac_ops = 0;
  u64 irqs = 0;  ///< progress interrupts (IRQ instruction)
  u64 words_to_rac = 0;
  u64 words_from_rac = 0;
};

/// Functional RAC: consumes the input FIFO word-streams, produces output
/// word-streams. Called once per exec/execs. The callback receives the
/// input FIFO queues (mutable: it must pop what it consumes) and pushes
/// into the output queues.
using EmuRac =
    std::function<void(std::vector<std::deque<u32>>& in_fifos,
                       std::vector<std::deque<u32>>& out_fifos)>;

/// Execute @p prog functionally over @p memory (word-addressed by byte
/// address; missing addresses read as 0). The untimed model assumes
/// unbounded FIFOs — legal programs never depend on FIFO backpressure for
/// correctness, only for timing.
EmuResult emulate(const Program& prog, const EmuConfig& cfg,
                  std::map<Addr, u32>& memory, const EmuRac& rac);

/// Convenience functional RAC: drain input FIFO 0 completely and copy it
/// to output FIFO 0 (matches PassthroughRac with 32-bit chunks when the
/// block size equals the words supplied).
EmuRac passthrough_emu_rac();

}  // namespace ouessant::core
