#include "ouessant/interface.hpp"

#include <algorithm>

#include "ouessant/isa.hpp"

namespace ouessant::core {

BusInterface::BusInterface(std::string name, Addr base,
                           bus::BusMasterPort& master)
    : name_(std::move(name)), base_(base), master_(master) {
  if (base % 4 != 0) {
    throw ConfigError("BusInterface " + name_ + ": unaligned base");
  }
}

u32 BusInterface::reg_index(Addr addr, const char* what) const {
  if (addr < base_ || addr - base_ >= kRegSpanBytes || addr % 4 != 0) {
    throw SimError("BusInterface " + name_ + ": bad register " + what +
                   " at 0x" + std::to_string(addr));
  }
  return (addr - base_) / 4;
}

u32 BusInterface::read_ctrl() const {
  u32 v = 0;
  if (start_pending_) v |= kCtrlStart;
  if (ie_) v |= kCtrlIe;
  if (done_) v |= kCtrlDone;
  if (running_) v |= kCtrlBusy;
  if (error_) v |= kCtrlErr;
  if (progress_) v |= kCtrlProg;
  if (chain_) v |= kCtrlChain;
  return v;
}

void BusInterface::write_ctrl(u32 value) {
  ie_ = (value & kCtrlIe) != 0;
  // CHAIN is level-sensitive configuration, re-derived (like IE) on
  // every control write: drivers must OR it into read-modify-write
  // sequences. Edges notify the bound link so a gated ChainLink wakes.
  const bool chain = (value & kCtrlChain) != 0;
  if (chain != chain_) {
    chain_ = chain;
    if (chain_listener_) chain_listener_(chain_);
  }
  if ((value & kCtrlRst) != 0) {
    // Soft reset: clear every status bit and latch the pulse for the
    // controller, which performs the actual abort (bus transaction,
    // FIFOs, RAC) on its next tick. Banks/prog_size survive.
    reset_pending_ = true;
    start_pending_ = false;
    done_ = false;
    error_ = false;
    progress_ = false;
    irq_.clear();
    if (start_waiter_ != nullptr) start_waiter_->wake();
  }
  if ((value & kCtrlDone) != 0) {  // W1C
    done_ = false;
    irq_.clear();
  }
  if ((value & kCtrlErr) != 0) {  // W1C
    error_ = false;
  }
  if ((value & kCtrlProg) != 0) {  // W1C
    progress_ = false;
    if (!done_) irq_.clear();
  }
  if ((value & kCtrlStart) != 0 && !running_) {
    start_pending_ = true;
    if (start_waiter_ != nullptr) start_waiter_->wake();
  }
}

bus::SlaveResponse BusInterface::read_word(Addr addr) {
  const u32 idx = reg_index(addr, "read");
  u32 v = 0;
  switch (idx) {
    case 0: v = read_ctrl(); break;
    case 1: v = prog_size_; break;
    default: v = banks_[idx - 2]; break;
  }
  return {.data = v, .wait_states = 0};
}

u32 BusInterface::write_word(Addr addr, u32 data) {
  const u32 idx = reg_index(addr, "write");
  switch (idx) {
    case 0:
      write_ctrl(data);
      break;
    case 1:
      prog_size_ = data;
      break;
    default:
      if (data % 4 != 0) {
        throw SimError("BusInterface " + name_ + ": bank " +
                       std::to_string(idx - 2) + " base must be word aligned");
      }
      banks_[idx - 2] = data;
      break;
  }
  return 0;
}

Addr BusInterface::translate(u8 bank, u32 word_offset) const {
  if (bank >= kNumBankRegs) {
    throw SimError("BusInterface " + name_ + ": bank id out of range");
  }
  return banks_[bank] + word_offset * 4;
}

void BusInterface::preconfigure(const std::array<u32, kNumBankRegs>& banks,
                                u32 prog_size) {
  for (u32 b : banks) {
    if (b % 4 != 0) {
      throw ConfigError("BusInterface " + name_ +
                        ": preconfigured bank base must be word aligned");
    }
  }
  banks_ = banks;
  prog_size_ = prog_size;
}

void BusInterface::set_standalone(bool autostart, bool auto_restart) {
  autostart_armed_ = autostart;
  auto_restart_ = auto_restart;
  if (autostart && start_waiter_ != nullptr) start_waiter_->wake();
}

void BusInterface::ack_start() {
  start_pending_ = false;
  if (!auto_restart_) autostart_armed_ = false;
}

void BusInterface::signal_done() {
  done_ = true;
  if (ie_) irq_.raise();
}

void BusInterface::signal_error() {
  error_ = true;
  if (ie_) irq_.raise();
}

void BusInterface::signal_progress() {
  progress_ = true;
  if (ie_) irq_.raise();
}

res::ResourceNode BusInterface::resource_tree() const {
  // Fig. 3 datapath: 10x32b register file, bank-select mux, 32-bit
  // offset adder, slave FSM, master FSM, config data multiplexer.
  res::ResourceNode n{.name = name_, .self = {}, .children = {}};
  res::ResourceEstimate regs;
  regs += res::est_register(10 * 32);
  res::ResourceEstimate xlate;
  xlate += res::est_mux(kNumBankRegs, 32);  // bank select
  xlate += res::est_adder(32);              // base + offset
  res::ResourceEstimate fsms;
  fsms += res::est_fsm(4, 12);   // bus slave FSM
  fsms += res::est_fsm(6, 16);   // bus master FSM (burst sequencing)
  fsms += res::est_mux(10, 32);  // cfg data multiplexer (register readback)
  fsms += res::est_register(32 + 14 + 4);  // address/burst staging
  n.children.push_back({"config_regs", regs, {}});
  n.children.push_back({"translation", xlate, {}});
  n.children.push_back({"bus_fsms", fsms, {}});
  return n;
}

void BusInterface::save_state(snap::StateWriter& w) const {
  std::vector<u32> banks(banks_.begin(), banks_.end());
  w.write_words32("banks", banks);
  w.write_u32("prog_size", prog_size_);
  w.write_bool("ie", ie_);
  w.write_bool("start_pending", start_pending_);
  w.write_bool("reset_pending", reset_pending_);
  w.write_bool("autostart_armed", autostart_armed_);
  w.write_bool("auto_restart", auto_restart_);
  w.write_bool("running", running_);
  w.write_bool("chain", chain_);
  w.write_bool("done", done_);
  w.write_bool("error", error_);
  w.write_bool("progress", progress_);
  w.write_bool("irq_level", irq_.raised());
}

void BusInterface::restore_state(snap::StateReader& r) {
  const std::vector<u32> banks = r.read_words32("banks");
  if (banks.size() != banks_.size()) {
    throw snap::SnapshotError("BusInterface " + name_ +
                              ": bank register count mismatch");
  }
  std::copy(banks.begin(), banks.end(), banks_.begin());
  prog_size_ = r.read_u32("prog_size");
  ie_ = r.read_bool("ie");
  start_pending_ = r.read_bool("start_pending");
  reset_pending_ = r.read_bool("reset_pending");
  autostart_armed_ = r.read_bool("autostart_armed");
  auto_restart_ = r.read_bool("auto_restart");
  running_ = r.read_bool("running");
  chain_ = r.read_bool("chain");
  done_ = r.read_bool("done");
  error_ = r.read_bool("error");
  progress_ = r.read_bool("progress");
  irq_.restore_level(r.read_bool("irq_level"));
}

}  // namespace ouessant::core
