#include "ouessant/isa.hpp"

#include <sstream>

namespace ouessant::isa {

bool is_v1_opcode(Opcode op) {
  switch (op) {
    case Opcode::kMvtc:
    case Opcode::kMvfc:
    case Opcode::kExec:
    case Opcode::kExecs:
    case Opcode::kEop:
      return true;
    default:
      return false;
  }
}

bool opcode_valid(u8 raw) { return raw <= static_cast<u8>(Opcode::kIrq); }

std::string mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kMvtc: return "mvtc";
    case Opcode::kMvfc: return "mvfc";
    case Opcode::kExec: return "exec";
    case Opcode::kExecs: return "execs";
    case Opcode::kEop: return "eop";
    case Opcode::kWait: return "wait";
    case Opcode::kLoop: return "loop";
    case Opcode::kIrq: return "irq";
  }
  std::ostringstream os;
  os << "op_0x" << std::hex << static_cast<unsigned>(op);
  return os.str();
}

namespace {

void check_range(const char* what, u64 value, u64 max) {
  if (value > max) {
    std::ostringstream os;
    os << "isa::encode: " << what << " = " << value << " exceeds " << max;
    throw SimError(os.str());
  }
}

}  // namespace

u32 encode(const Instruction& ins) {
  u32 w = static_cast<u32>(ins.op) << 27;
  switch (ins.op) {
    case Opcode::kMvtc:
    case Opcode::kMvfc: {
      check_range("bank", ins.bank, kNumBanks - 1);
      check_range("offset", ins.offset, kMaxOffset);
      check_range("fifo", ins.fifo, kNumFifoIds - 1);
      if (ins.len == 0 || ins.len > kMaxBurst) {
        throw SimError("isa::encode: burst length must be 1..256");
      }
      w |= static_cast<u32>(ins.bank) << 24;
      w |= ins.offset << 10;
      w |= static_cast<u32>(ins.fifo) << 8;
      w |= ins.len & 0xFFu;  // 256 encodes as 0
      break;
    }
    case Opcode::kLoop: {
      check_range("loop target", ins.target, kMaxLoopTarget);
      check_range("loop count", ins.count, kMaxLoopCount);
      w |= ins.target << 10;
      w |= ins.count & 0xFFu;
      break;
    }
    case Opcode::kNop:
    case Opcode::kExec:
    case Opcode::kExecs:
    case Opcode::kEop:
    case Opcode::kWait:
    case Opcode::kIrq:
      break;
  }
  return w;
}

std::optional<Instruction> decode(u32 word) {
  const u8 raw_op = static_cast<u8>(word >> 27);
  if (!opcode_valid(raw_op)) return std::nullopt;
  Instruction ins;
  ins.op = static_cast<Opcode>(raw_op);
  switch (ins.op) {
    case Opcode::kMvtc:
    case Opcode::kMvfc:
      ins.bank = static_cast<u8>((word >> 24) & 0x7u);
      ins.offset = (word >> 10) & kMaxOffset;
      ins.fifo = static_cast<u8>((word >> 8) & 0x3u);
      ins.len = word & 0xFFu;
      if (ins.len == 0) ins.len = kMaxBurst;
      break;
    case Opcode::kLoop:
      ins.target = (word >> 10) & kMaxLoopTarget;
      ins.count = word & 0xFFu;
      break;
    case Opcode::kNop:
    case Opcode::kExec:
    case Opcode::kExecs:
    case Opcode::kEop:
    case Opcode::kWait:
    case Opcode::kIrq:
      break;
  }
  return ins;
}

std::string to_string(const Instruction& ins) {
  std::ostringstream os;
  os << mnemonic(ins.op);
  switch (ins.op) {
    case Opcode::kMvtc:
    case Opcode::kMvfc:
      os << " BANK" << static_cast<unsigned>(ins.bank) << ',' << ins.offset
         << ",DMA" << ins.len << ",FIFO" << static_cast<unsigned>(ins.fifo);
      break;
    case Opcode::kLoop:
      os << ' ' << ins.target << ',' << ins.count;
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace ouessant::isa
