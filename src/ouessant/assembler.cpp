#include "ouessant/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace ouessant::core {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string strip_comment(const std::string& line) {
  std::size_t cut = line.size();
  const auto slashes = line.find("//");
  if (slashes != std::string::npos) cut = std::min(cut, slashes);
  const auto hash = line.find('#');
  if (hash != std::string::npos) cut = std::min(cut, hash);
  const auto semi = line.find(';');
  if (semi != std::string::npos) cut = std::min(cut, semi);
  return line.substr(0, cut);
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// A logical source line: optional label, optional mnemonic + operands.
struct Line {
  unsigned number;  // 1-based
  std::string label;
  std::string mnemonic;
  std::vector<std::string> operands;
};

std::vector<Line> split_lines(const std::string& source) {
  std::vector<Line> out;
  std::istringstream in(source);
  std::string raw;
  unsigned number = 0;
  while (std::getline(in, raw)) {
    ++number;
    std::string text = trim(strip_comment(raw));
    if (text.empty()) continue;
    Line line;
    line.number = number;
    const auto colon = text.find(':');
    if (colon != std::string::npos) {
      line.label = trim(text.substr(0, colon));
      if (line.label.empty()) throw AsmError(number, "empty label");
      text = trim(text.substr(colon + 1));
    }
    if (!text.empty()) {
      const auto sp = text.find_first_of(" \t");
      if (sp == std::string::npos) {
        line.mnemonic = lower(text);
      } else {
        line.mnemonic = lower(trim(text.substr(0, sp)));
        std::string rest = text.substr(sp + 1);
        std::string tok;
        std::istringstream ops(rest);
        while (std::getline(ops, tok, ',')) {
          tok = trim(tok);
          if (tok.empty()) throw AsmError(number, "empty operand");
          line.operands.push_back(tok);
        }
      }
    }
    out.push_back(std::move(line));
  }
  return out;
}

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  if (s.size() > 2 && (s[0] == '0') && (s[1] == 'x' || s[1] == 'X')) {
    return s.find_first_not_of("0123456789abcdefABCDEF", 2) == std::string::npos;
  }
  return s.find_first_not_of("0123456789") == std::string::npos;
}

u32 parse_number(const Line& line, const std::string& s) {
  if (!is_number(s)) {
    throw AsmError(line.number, "expected a number, got '" + s + "'");
  }
  return static_cast<u32>(std::stoul(s, nullptr, 0));
}

/// Parse "BANK3" / "DMA64" / "FIFO1" style operands, or a bare number.
u32 parse_prefixed(const Line& line, const std::string& tok,
                   const char* prefix) {
  const std::string low = lower(tok);
  const std::string pfx = lower(prefix);
  if (low.rfind(pfx, 0) == 0) {
    return parse_number(line, low.substr(pfx.size()));
  }
  return parse_number(line, tok);
}

void expect_operands(const Line& line, std::size_t n) {
  if (line.operands.size() != n) {
    throw AsmError(line.number, line.mnemonic + " expects " +
                                    std::to_string(n) + " operand(s), got " +
                                    std::to_string(line.operands.size()));
  }
}

}  // namespace

Program assemble(const std::string& source) {
  const std::vector<Line> lines = split_lines(source);

  // Pass 1: label -> instruction index.
  std::map<std::string, u32> labels;
  u32 index = 0;
  for (const Line& line : lines) {
    if (!line.label.empty()) {
      if (labels.count(lower(line.label)) != 0) {
        throw AsmError(line.number, "duplicate label '" + line.label + "'");
      }
      labels[lower(line.label)] = index;
    }
    if (!line.mnemonic.empty()) ++index;
  }

  // Pass 2: encode.
  Program prog;
  for (const Line& line : lines) {
    if (line.mnemonic.empty()) continue;
    const std::string& m = line.mnemonic;
    try {
      if (m == "mvtc" || m == "mvfc") {
        expect_operands(line, 4);
        isa::Instruction ins;
        ins.op = (m == "mvtc") ? isa::Opcode::kMvtc : isa::Opcode::kMvfc;
        ins.bank = static_cast<u8>(parse_prefixed(line, line.operands[0], "bank"));
        ins.offset = parse_number(line, line.operands[1]);
        ins.len = parse_prefixed(line, line.operands[2], "dma");
        ins.fifo = static_cast<u8>(parse_prefixed(line, line.operands[3], "fifo"));
        prog.push(ins);
      } else if (m == "exec") {
        expect_operands(line, 0);
        prog.exec();
      } else if (m == "execs") {
        expect_operands(line, 0);
        prog.execs();
      } else if (m == "eop") {
        expect_operands(line, 0);
        prog.eop();
      } else if (m == "nop") {
        expect_operands(line, 0);
        prog.nop();
      } else if (m == "wait") {
        expect_operands(line, 0);
        prog.wait();
      } else if (m == "irq") {
        expect_operands(line, 0);
        prog.irq();
      } else if (m == "loop") {
        expect_operands(line, 2);
        u32 target = 0;
        const std::string tgt = lower(line.operands[0]);
        if (is_number(tgt)) {
          target = parse_number(line, tgt);
        } else {
          auto it = labels.find(tgt);
          if (it == labels.end()) {
            throw AsmError(line.number, "unknown label '" + line.operands[0] + "'");
          }
          target = it->second;
        }
        prog.loop(target, parse_number(line, line.operands[1]));
      } else {
        throw AsmError(line.number, "unknown mnemonic '" + m + "'");
      }
      // Validate field widths eagerly so errors carry line numbers.
      (void)isa::encode(prog.code().back());
    } catch (const AsmError&) {
      throw;
    } catch (const SimError& e) {
      throw AsmError(line.number, e.what());
    }
  }
  return prog;
}

std::string disassemble(const std::vector<u32>& image) {
  std::ostringstream os;
  for (std::size_t i = 0; i < image.size(); ++i) {
    const auto ins = isa::decode(image[i]);
    if (!ins) {
      os << i << ":\t.word 0x" << std::hex << image[i] << std::dec << '\n';
      continue;
    }
    os << i << ":\t" << isa::to_string(*ins) << '\n';
  }
  return os.str();
}

}  // namespace ouessant::core
