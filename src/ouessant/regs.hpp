// The OCP configuration register map (paper Fig. 3).
//
// "Configuration is stored on 10 registers. The first register is a
// control register [...] The second register is the number of
// instructions in the program. The remaining registers are used to store
// memory banks location in the system."
#pragma once

#include "util/types.hpp"

namespace ouessant::core {

inline constexpr Addr kRegCtrl = 0x00;      ///< control register
inline constexpr Addr kRegProgSize = 0x04;  ///< program size (instructions)
inline constexpr Addr kRegBank0 = 0x08;     ///< bank 0 base address
inline constexpr u32 kNumBankRegs = 8;
inline constexpr Addr kRegSpanBytes = 0x28;  ///< 10 registers * 4 bytes

/// Byte offset of bank register @p n (n < 8). Bank 7 sits at 0x24.
constexpr Addr bank_reg(u32 n) { return kRegBank0 + n * 4; }

// Control register bits. S/IE/D are the paper's three; BUSY, ERR, PROG
// and RST are status/recovery extensions of this implementation.
inline constexpr u32 kCtrlStart = 1u << 0;  ///< S: start the coprocessor
inline constexpr u32 kCtrlIe = 1u << 1;     ///< IE: enable interrupt
inline constexpr u32 kCtrlDone = 1u << 2;   ///< D: processing finished (W1C)
inline constexpr u32 kCtrlBusy = 1u << 3;   ///< controller running (RO)
inline constexpr u32 kCtrlErr = 1u << 4;    ///< microcode fault (W1C)
inline constexpr u32 kCtrlProg = 1u << 5;   ///< progress signal (irq, W1C)
/// RST: soft-reset pulse (self-clearing, reads as 0). Aborts the
/// controller, flushes the FIFOs, drops a hung RAC op and clears every
/// status bit — but keeps the configuration registers (banks, program
/// size), so a retry can relaunch the resident program immediately. The
/// recovery half of the fault model (docs/robustness.md).
inline constexpr u32 kCtrlRst = 1u << 6;
/// CHAIN: route this OCP's output FIFO into a peer's input FIFO through
/// the point-to-point ChainLink instead of mvfc'ing results to SRAM.
/// Configuration-like (level-sensitive, survives RST alongside the bank
/// registers); the bound link only moves words while the bit is set.
/// See docs/chaining.md.
inline constexpr u32 kCtrlChain = 1u << 7;

/// By convention the microcode program lives in bank 0 (Fig. 4 uses
/// BANK1/BANK2 for data); the controller fetches instruction @c pc from
/// bank0_base + 4*pc.
inline constexpr u32 kProgramBank = 0;

}  // namespace ouessant::core
