// Microcode generators for the common "stream a block through the RAC"
// pattern (paper Fig. 4). Drivers, examples and benches all build their
// programs through these helpers instead of hand-writing instruction
// ladders.
#pragma once

#include "ouessant/program.hpp"

namespace ouessant::core {

struct StreamJob {
  u8 in_bank = 1;       ///< bank holding the input block
  u32 in_offset = 0;    ///< word offset of the input inside its bank
  u32 in_words = 0;     ///< input words to move (mvtc total)
  u8 out_bank = 2;      ///< bank receiving the result
  u32 out_offset = 0;
  u32 out_words = 0;    ///< output words to move back (mvfc total)
  u32 burst = 64;       ///< words per mvtc/mvfc ("DMA64" in Fig. 4)
  u8 in_fifo = 0;
  u8 out_fifo = 0;
  /// Fig. 4 style: launch with execs before draining the output, so the
  /// transfer overlaps the RAC's own streaming. When false the program
  /// moves all input, blocks on exec, then moves the output.
  bool overlap = true;
  /// Use the v2 LOOP instruction (post-increment streaming mode) instead
  /// of unrolling the transfer ladder — needs IsaLevel::kV2.
  bool use_loop = false;
};

/// Build the microcode for @p job. Throws ConfigError when word counts do
/// not divide into bursts.
[[nodiscard]] Program build_stream_program(const StreamJob& job);

/// Batched microcode: process @p batch consecutive blocks per invocation
/// with a single v2 loop around (mvtc, exec, mvfc) — post-increment
/// addressing walks both banks block by block, so the OCP chews through
/// an entire buffer of blocks with ONE start bit and ONE interrupt (the
/// autonomy the paper's microcontroller approach is for). Requires
/// IsaLevel::kV2 and block word counts within one burst (<= 256 words).
[[nodiscard]] Program build_batch_program(const StreamJob& per_block,
                                          u32 batch);

/// Chained-launch microcode for the HEAD of a p2p chain
/// (docs/chaining.md): the producer feeds its RAC from SRAM but never
/// drains it — the ChainLink is the output FIFO's reader. Per
/// iteration: mvtc one block, exec; the v2 loop slides the input window
/// batch blocks. The out_* fields of @p per_block are ignored.
[[nodiscard]] Program build_chain_head_program(const StreamJob& per_block,
                                               u32 batch);

/// Chained-launch microcode for the TAIL of a p2p chain: the consumer's
/// input arrives over the ChainLink, so there is no mvtc — per
/// iteration: exec (blocks until the link has delivered a block into
/// the input FIFO), mvfc the result to SRAM. The in_* fields of
/// @p per_block are ignored.
[[nodiscard]] Program build_chain_tail_program(const StreamJob& per_block,
                                               u32 batch);

/// The verbatim program of the paper's Fig. 4: a 256-point DFT with
/// 512 input words in bank 1 and 512 output words to bank 2, moved as
/// eight DMA64 bursts each way around an execs. (Equivalent to
/// build_stream_program with in/out = 512, burst = 64, overlap = true.)
[[nodiscard]] Program figure4_program();

}  // namespace ouessant::core
