#include "ouessant/codegen.hpp"

#include <algorithm>

namespace ouessant::core {

namespace {

void check_divides(const char* what, u32 words, u32 burst) {
  if (burst == 0 || burst > isa::kMaxBurst) {
    throw ConfigError("build_stream_program: burst must be 1..256");
  }
  if (words % burst != 0) {
    throw ConfigError(std::string("build_stream_program: ") + what +
                      " word count is not a multiple of the burst length");
  }
}

/// Emit the transfer ladder for one direction, unrolled or looped.
void emit_transfers(Program& p, bool to_coprocessor, u8 bank, u32 offset,
                    u32 words, u32 burst, u8 fifo, bool use_loop) {
  const u32 blocks = words / burst;
  if (blocks == 0) return;
  auto emit_one = [&](u32 block_index) {
    const u32 off = offset + block_index * burst;
    if (to_coprocessor) {
      p.mvtc(bank, off, burst, fifo);
    } else {
      p.mvfc(bank, off, burst, fifo);
    }
  };
  if (use_loop && blocks > 1) {
    // The LOOP count field is 8 bits, so long transfers chain several
    // looped segments (each segment's first mvtc/mvfc carries the
    // segment's base offset; later iterations auto-increment).
    u32 done = 0;
    while (done < blocks) {
      const u32 group = std::min(blocks - done, isa::kMaxLoopCount + 1);
      const u32 body = static_cast<u32>(p.size());
      emit_one(done);
      if (group > 1) p.loop(body, group - 1);
      done += group;
    }
  } else {
    for (u32 b = 0; b < blocks; ++b) emit_one(b);
  }
}

}  // namespace

Program build_stream_program(const StreamJob& job) {
  check_divides("input", job.in_words, job.burst);
  check_divides("output", job.out_words, job.burst);
  if (job.in_words == 0 || job.out_words == 0) {
    throw ConfigError("build_stream_program: zero-sized job");
  }
  Program p;
  if (job.overlap) {
    emit_transfers(p, true, job.in_bank, job.in_offset, job.in_words,
                   job.burst, job.in_fifo, job.use_loop);
    p.execs();
    emit_transfers(p, false, job.out_bank, job.out_offset, job.out_words,
                   job.burst, job.out_fifo, job.use_loop);
  } else {
    emit_transfers(p, true, job.in_bank, job.in_offset, job.in_words,
                   job.burst, job.in_fifo, job.use_loop);
    p.exec();
    emit_transfers(p, false, job.out_bank, job.out_offset, job.out_words,
                   job.burst, job.out_fifo, job.use_loop);
  }
  p.eop();
  return p;
}

Program build_batch_program(const StreamJob& per_block, u32 batch) {
  if (batch == 0 || batch > isa::kMaxLoopCount + 1) {
    throw ConfigError("build_batch_program: batch must be 1..256");
  }
  if (per_block.in_words == 0 || per_block.in_words > isa::kMaxBurst ||
      per_block.out_words == 0 || per_block.out_words > isa::kMaxBurst) {
    throw ConfigError(
        "build_batch_program: per-block word counts must fit one burst");
  }
  Program p;
  const u32 body = 0;
  // One block per iteration; the loop's post-increment addressing slides
  // the mvtc/mvfc windows by exactly one block each pass.
  p.mvtc(per_block.in_bank, per_block.in_offset, per_block.in_words,
         per_block.in_fifo);
  p.exec();
  p.mvfc(per_block.out_bank, per_block.out_offset, per_block.out_words,
         per_block.out_fifo);
  if (batch > 1) p.loop(body, batch - 1);
  p.eop();
  return p;
}

Program build_chain_head_program(const StreamJob& per_block, u32 batch) {
  if (batch == 0 || batch > isa::kMaxLoopCount + 1) {
    throw ConfigError("build_chain_head_program: batch must be 1..256");
  }
  if (per_block.in_words == 0 || per_block.in_words > isa::kMaxBurst) {
    throw ConfigError(
        "build_chain_head_program: per-block word count must fit one burst");
  }
  Program p;
  p.mvtc(per_block.in_bank, per_block.in_offset, per_block.in_words,
         per_block.in_fifo);
  p.exec();
  if (batch > 1) p.loop(0, batch - 1);
  p.eop();
  return p;
}

Program build_chain_tail_program(const StreamJob& per_block, u32 batch) {
  if (batch == 0 || batch > isa::kMaxLoopCount + 1) {
    throw ConfigError("build_chain_tail_program: batch must be 1..256");
  }
  if (per_block.out_words == 0 || per_block.out_words > isa::kMaxBurst) {
    throw ConfigError(
        "build_chain_tail_program: per-block word count must fit one burst");
  }
  Program p;
  p.exec();
  p.mvfc(per_block.out_bank, per_block.out_offset, per_block.out_words,
         per_block.out_fifo);
  if (batch > 1) p.loop(0, batch - 1);
  p.eop();
  return p;
}

Program figure4_program() {
  return build_stream_program(StreamJob{.in_bank = 1,
                                        .in_offset = 0,
                                        .in_words = 512,
                                        .out_bank = 2,
                                        .out_offset = 0,
                                        .out_words = 512,
                                        .burst = 64,
                                        .in_fifo = 0,
                                        .out_fifo = 0,
                                        .overlap = true,
                                        .use_loop = false});
}

}  // namespace ouessant::core
