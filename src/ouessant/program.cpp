#include "ouessant/program.hpp"

#include <sstream>

namespace ouessant::core {

std::vector<u32> Program::image() const {
  std::vector<u32> out;
  out.reserve(code_.size());
  for (const auto& ins : code_) out.push_back(isa::encode(ins));
  return out;
}

Program Program::from_image(const std::vector<u32>& words) {
  Program p;
  for (std::size_t i = 0; i < words.size(); ++i) {
    auto ins = isa::decode(words[i]);
    if (!ins) {
      throw SimError("Program::from_image: unassigned opcode at index " +
                     std::to_string(i));
    }
    p.push(*ins);
  }
  return p;
}

std::string Program::listing() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    os << i << ":\t" << isa::to_string(code_[i]) << '\n';
  }
  return os.str();
}

Program& Program::mvtc(u8 bank, u32 offset, u32 len, u8 fifo) {
  push({.op = isa::Opcode::kMvtc, .bank = bank, .offset = offset,
        .fifo = fifo, .len = len});
  return *this;
}

Program& Program::mvfc(u8 bank, u32 offset, u32 len, u8 fifo) {
  push({.op = isa::Opcode::kMvfc, .bank = bank, .offset = offset,
        .fifo = fifo, .len = len});
  return *this;
}

Program& Program::exec() {
  push({.op = isa::Opcode::kExec});
  return *this;
}

Program& Program::execs() {
  push({.op = isa::Opcode::kExecs});
  return *this;
}

Program& Program::eop() {
  push({.op = isa::Opcode::kEop});
  return *this;
}

Program& Program::nop() {
  push({.op = isa::Opcode::kNop});
  return *this;
}

Program& Program::wait() {
  push({.op = isa::Opcode::kWait});
  return *this;
}

Program& Program::loop(u32 target, u32 count) {
  push({.op = isa::Opcode::kLoop, .target = target, .count = count});
  return *this;
}

Program& Program::irq() {
  push({.op = isa::Opcode::kIrq});
  return *this;
}

std::string VerifyResult::to_string() const {
  std::ostringstream os;
  for (const auto& e : errors) {
    os << "pc " << e.pc << ": " << e.message << '\n';
  }
  return os.str();
}

VerifyResult verify(const Program& prog, u32 num_in_fifos,
                    u32 num_out_fifos) {
  VerifyResult r;
  auto fail = [&r](std::size_t pc, const std::string& msg) {
    r.ok = false;
    r.errors.push_back({pc, msg});
  };

  if (prog.empty()) {
    fail(0, "empty program");
    return r;
  }
  if (prog.size() > isa::kMaxLoopTarget + 1) {
    fail(prog.size() - 1, "program exceeds the 14-bit PC range");
  }

  for (std::size_t pc = 0; pc < prog.size(); ++pc) {
    const isa::Instruction& ins = prog.at(pc);
    try {
      (void)isa::encode(ins);
    } catch (const SimError& e) {
      fail(pc, e.what());
      continue;
    }
    switch (ins.op) {
      case isa::Opcode::kMvtc:
        if (ins.fifo >= num_in_fifos) {
          fail(pc, "mvtc targets input FIFO " + std::to_string(ins.fifo) +
                       " but the RAC has " + std::to_string(num_in_fifos));
        }
        break;
      case isa::Opcode::kMvfc:
        if (ins.fifo >= num_out_fifos) {
          fail(pc, "mvfc reads output FIFO " + std::to_string(ins.fifo) +
                       " but the RAC has " + std::to_string(num_out_fifos));
        }
        break;
      case isa::Opcode::kLoop:
        if (ins.target >= prog.size()) {
          fail(pc, "loop target out of range");
        } else if (ins.target >= pc) {
          fail(pc, "loop target must be strictly backward");
        }
        break;
      default:
        break;
    }
  }

  // Run-off-the-end check: scanning forward, execution past the last
  // instruction is only safe if the final instruction is EOP (LOOP falls
  // through once exhausted).
  if (prog.at(prog.size() - 1).op != isa::Opcode::kEop) {
    fail(prog.size() - 1, "last instruction must be eop");
  }
  return r;
}

}  // namespace ouessant::core
