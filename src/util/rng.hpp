// Small deterministic PRNG (xoshiro128**) so tests and benches are
// reproducible across platforms without dragging in <random> engine
// implementation differences.
#pragma once

#include <array>

#include "util/types.hpp"

namespace ouessant::util {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    u64 z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      u64 x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = static_cast<u32>((x ^ (x >> 31)) >> 16);
    }
  }

  u32 next_u32() {
    const u32 result = rotl(state_[1] * 5u, 7) * 9u;
    const u32 t = state_[1] << 9;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 11);
    return result;
  }

  /// Uniform in [0, bound) — bound must be non-zero.
  u32 below(u32 bound) { return next_u32() % bound; }

  /// Uniform in [lo, hi] inclusive.
  i32 range(i32 lo, i32 hi) {
    return lo + static_cast<i32>(below(static_cast<u32>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return next_u32() * (1.0 / 4294967296.0); }

  bool chance(double p) { return uniform() < p; }

  /// Snapshot-restore access to the raw 128-bit generator state: a
  /// restored Rng continues the exact stream the saved one would have
  /// produced.
  [[nodiscard]] std::array<u32, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void restore_state(const std::array<u32, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static constexpr u32 rotl(u32 x, int k) { return (x << k) | (x >> (32 - k)); }
  u32 state_[4]{};
};

}  // namespace ouessant::util
