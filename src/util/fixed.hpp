// Fixed-point arithmetic helpers used by the RAC functional models and by
// the fixed-point software baselines. All RAC datapaths use two's-complement
// fixed point, as the paper's FPGA cores do.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/types.hpp"

namespace ouessant::util {

/// Saturate a 64-bit value into the signed range of @p bits bits.
constexpr i64 saturate(i64 v, unsigned bits) {
  const i64 hi = (i64{1} << (bits - 1)) - 1;
  const i64 lo = -(i64{1} << (bits - 1));
  return std::clamp(v, lo, hi);
}

/// Q-format value: @p frac fractional bits stored in an i32.
/// Conversions round to nearest (ties away from zero), matching the
/// rounding used in the RAC datapath models.
struct Q {
  unsigned frac;

  constexpr explicit Q(unsigned frac_bits) : frac(frac_bits) {}

  [[nodiscard]] constexpr i32 from_double(double v) const {
    const double scaled = v * static_cast<double>(i64{1} << frac);
    const double rounded = scaled >= 0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5);
    return static_cast<i32>(saturate(static_cast<i64>(rounded), 32));
  }

  [[nodiscard]] constexpr double to_double(i32 v) const {
    return static_cast<double>(v) / static_cast<double>(i64{1} << frac);
  }

  /// Full-precision multiply, then shift back with round-to-nearest.
  [[nodiscard]] constexpr i32 mul(i32 a, i32 b) const {
    i64 p = static_cast<i64>(a) * static_cast<i64>(b);
    p += i64{1} << (frac - 1);  // round to nearest
    return static_cast<i32>(saturate(p >> frac, 32));
  }
};

/// Pack two signed 16-bit values into one 32-bit bus word (lo in bits
/// [15:0], hi in bits [31:16]). Used by RACs carrying sample pairs.
constexpr u32 pack16(i16 lo, i16 hi) {
  return (static_cast<u32>(static_cast<u16>(hi)) << 16) | static_cast<u16>(lo);
}

constexpr i16 unpack16_lo(u32 w) { return static_cast<i16>(w & 0xFFFFu); }
constexpr i16 unpack16_hi(u32 w) { return static_cast<i16>(w >> 16); }

/// Reinterpret a signed 32-bit value as a bus word and back.
constexpr u32 to_word(i32 v) { return static_cast<u32>(v); }
constexpr i32 from_word(u32 w) { return static_cast<i32>(w); }

}  // namespace ouessant::util
