#include "util/reference.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <iomanip>

namespace ouessant::util {

std::vector<cplx> reference_dft(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      acc += x[j] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

std::vector<cplx> reference_idft(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = 2.0 * std::numbers::pi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      acc += x[j] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc / static_cast<double>(n);
  }
  return out;
}

u32 bit_reverse(u32 v, unsigned bits) {
  u32 r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | ((v >> i) & 1u);
  }
  return r;
}

std::vector<cplx> reference_fft(std::vector<cplx> x) {
  const std::size_t n = x.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw ConfigError("reference_fft: size must be a power of two");
  }
  const unsigned bits = log2_exact(n);
  // Bit-reversal permutation.
  for (u32 i = 0; i < n; ++i) {
    const u32 j = bit_reverse(i, bits);
    if (j > i) std::swap(x[i], x[j]);
  }
  // Iterative Cooley-Tukey, decimation in time.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * std::numbers::pi / static_cast<double>(len);
    const cplx wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      cplx w{1.0, 0.0};
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = x[i + j];
        const cplx v = x[i + j + len / 2] * w;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  return x;
}

namespace {

// Orthonormal DCT-II basis coefficient c(k) * cos((2n+1)k*pi/16) for 8 pts.
double dct_basis(int k, int n) {
  const double ck = (k == 0) ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
  return ck * std::cos((2.0 * n + 1.0) * k * std::numbers::pi / 16.0);
}

}  // namespace

void reference_dct8x8(const double in[64], double out[64]) {
  double tmp[64];
  // Rows.
  for (int r = 0; r < 8; ++r) {
    for (int k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (int n = 0; n < 8; ++n) acc += in[r * 8 + n] * dct_basis(k, n);
      tmp[r * 8 + k] = acc;
    }
  }
  // Columns.
  for (int c = 0; c < 8; ++c) {
    for (int k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (int n = 0; n < 8; ++n) acc += tmp[n * 8 + c] * dct_basis(k, n);
      out[k * 8 + c] = acc;
    }
  }
}

void reference_idct8x8(const double in[64], double out[64]) {
  double tmp[64];
  // Rows (inverse transform = sum over frequency index).
  for (int r = 0; r < 8; ++r) {
    for (int n = 0; n < 8; ++n) {
      double acc = 0.0;
      for (int k = 0; k < 8; ++k) acc += in[r * 8 + k] * dct_basis(k, n);
      tmp[r * 8 + n] = acc;
    }
  }
  // Columns.
  for (int c = 0; c < 8; ++c) {
    for (int n = 0; n < 8; ++n) {
      double acc = 0.0;
      for (int k = 0; k < 8; ++k) acc += tmp[k * 8 + c] * dct_basis(k, n);
      out[n * 8 + c] = acc;
    }
  }
}

std::string hexdump(const std::vector<u32>& words, Addr base) {
  std::ostringstream os;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i % 8 == 0) {
      if (i != 0) os << '\n';
      os << std::hex << std::setw(8) << std::setfill('0')
         << (base + i * 4) << ": ";
    }
    os << std::hex << std::setw(8) << std::setfill('0') << words[i] << ' ';
  }
  os << '\n';
  return os.str();
}

}  // namespace ouessant::util
