// The one fault record every layer shares.
//
// A fault observation always answers the same three questions — *when*
// (a cycle, or an instruction step for the untimed emulator), *where*
// (the microcode pc) and *what* (a human-readable reason). The emulator,
// the cycle-level Controller and the driver's FaultReport all carry this
// struct so a fault can be compared across models without re-parsing
// strings (the old EmuResult::fault was a bare string; DESIGN.md §11).
#pragma once

#include <string>

#include "util/types.hpp"

namespace ouessant {

struct FaultInfo {
  Cycle cycle = 0;     ///< sim cycle (emulator: instruction steps executed)
  u32 pc = 0;          ///< microcode pc at the fault (0 when not applicable)
  std::string reason;  ///< empty <=> no fault recorded

  [[nodiscard]] bool empty() const { return reason.empty(); }

  [[nodiscard]] std::string to_string() const {
    if (empty()) return "no fault";
    return reason + " (pc=" + std::to_string(pc) + ", cycle=" +
           std::to_string(cycle) + ")";
  }

  friend bool operator==(const FaultInfo&, const FaultInfo&) = default;
};

}  // namespace ouessant
