// Golden reference transforms (double precision) used to validate the RAC
// functional models and the fixed-point software baselines. These are the
// "mathematically true" answers; everything else in the repo is compared
// against them.
#pragma once

#include <complex>
#include <vector>

#include "util/types.hpp"

namespace ouessant::util {

using cplx = std::complex<double>;

/// Direct O(n^2) DFT: X[k] = sum_n x[n] * exp(-2*pi*i*k*n/n).
std::vector<cplx> reference_dft(const std::vector<cplx>& x);

/// Inverse DFT (with 1/N normalization).
std::vector<cplx> reference_idft(const std::vector<cplx>& x);

/// Radix-2 iterative FFT in double precision (n must be a power of two).
/// Same algorithm shape as the Spiral iterative core and the fixed-point
/// RAC model, so it is also used to cross-check their stage ordering.
std::vector<cplx> reference_fft(std::vector<cplx> x);

/// 8x8 forward DCT-II (orthonormal), row-major in/out.
void reference_dct8x8(const double in[64], double out[64]);

/// 8x8 inverse DCT (DCT-III, orthonormal), row-major in/out.
void reference_idct8x8(const double in[64], double out[64]);

/// Bit-reverse the low @p bits bits of @p v.
u32 bit_reverse(u32 v, unsigned bits);

/// Dump a word buffer as hex, 8 words per line (debugging aid).
std::string hexdump(const std::vector<u32>& words, Addr base = 0);

}  // namespace ouessant::util
