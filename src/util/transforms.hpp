// Bit-exact fixed-point transform datapaths.
//
// These functions define the *numerical contract* of the accelerators: the
// RAC hardware models and the (timing-annotated) software baselines both
// call the same code, so HW and SW results are bit-identical — exactly the
// property the paper relies on when swapping a software DFT/IDCT call for
// an OCP invocation.
#pragma once

#include <array>
#include <vector>

#include "util/types.hpp"

namespace ouessant::util {

/// Fixed-point 2D 8x8 IDCT (the paper's JPEG-decoding RAC).
///
/// Input: 64 DCT coefficients (row-major), integer values as produced by a
/// JPEG dequantizer. Internally uses Q(kIdctFrac) cosines with an even/odd
/// symmetric (butterfly) 1-D pass applied to rows then columns; each pass
/// rounds back to integer. Output: 64 spatial samples.
inline constexpr unsigned kIdctFrac = 14;
void fixed_idct8x8(const i32 in[64], i32 out[64]);

/// The Q(kIdctFrac) orthonormal DCT basis table the fixed IDCT uses:
/// entry [k][n] = c(k) * cos((2n+1) k pi / 16). Exposed so other
/// implementations of the same datapath (the L3 assembly kernel, RTL)
/// can share it bit-for-bit.
const std::array<std::array<i32, 8>, 8>& idct_basis_q14();

/// Number of butterfly operations the 1-D even/odd pass performs — used by
/// the software cost model (charged per multiply/add actually executed).
struct Idct1dOpCount {
  u32 muls = 32;
  u32 adds = 32;
};

/// Fixed-point iterative radix-2 DIT FFT over Q(kFftFrac) samples.
///
/// re/im are Q(kFftFrac) fixed-point values in i32. Every stage scales by
/// 1/2 (arithmetic shift with round-to-nearest) so the datapath cannot
/// overflow; the output therefore equals DFT(x) / N in Q(kFftFrac).
/// Size must be a power of two. This is the numerical behaviour of the
/// Spiral-style iterative core the paper uses as its DFT RAC.
inline constexpr unsigned kFftFrac = 16;
void fixed_fft(std::vector<i32>& re, std::vector<i32>& im);

/// Twiddle factor table (Q(kFftFrac)) for an @p n-point FFT:
/// entry k holds (cos, -sin) of 2*pi*k/n, k in [0, n/2).
struct TwiddleTable {
  std::vector<i32> cos_q;
  std::vector<i32> msin_q;
};
TwiddleTable make_twiddles(std::size_t n);

}  // namespace ouessant::util
