#include "util/transforms.hpp"

#include <array>
#include <cmath>
#include <numbers>

#include "util/fixed.hpp"
#include "util/reference.hpp"

namespace ouessant::util {

const std::array<std::array<i32, 8>, 8>& idct_basis_q14() {
  static const auto table = [] {
    std::array<std::array<i32, 8>, 8> t{};
    const Q q(kIdctFrac);
    for (int k = 0; k < 8; ++k) {
      const double ck = (k == 0) ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int n = 0; n < 8; ++n) {
        t[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)] =
            q.from_double(ck * std::cos((2.0 * n + 1.0) * k *
                                        std::numbers::pi / 16.0));
      }
    }
    return t;
  }();
  return table;
}

namespace {

/// One even/odd symmetric 1-D 8-point IDCT pass in fixed point.
/// in/out are integer sample values; the Q-format lives in the basis table.
/// 32 multiplies + 32 adds, the structure the cost model charges for.
void idct1d_fixed(const i32 in[8], i32 out[8]) {
  const auto& b = idct_basis_q14();
  const i64 round = i64{1} << (kIdctFrac - 1);
  for (int n = 0; n < 4; ++n) {
    i64 even = 0;
    i64 odd = 0;
    for (int k = 0; k < 8; k += 2) {
      even += static_cast<i64>(in[k]) *
              b[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)];
    }
    for (int k = 1; k < 8; k += 2) {
      odd += static_cast<i64>(in[k]) *
             b[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)];
    }
    out[n] = static_cast<i32>((even + odd + round) >> kIdctFrac);
    out[7 - n] = static_cast<i32>((even - odd + round) >> kIdctFrac);
  }
}

}  // namespace

void fixed_idct8x8(const i32 in[64], i32 out[64]) {
  i32 tmp[64];
  // Rows.
  for (int r = 0; r < 8; ++r) {
    idct1d_fixed(&in[r * 8], &tmp[r * 8]);
  }
  // Columns.
  for (int c = 0; c < 8; ++c) {
    i32 col_in[8];
    i32 col_out[8];
    for (int r = 0; r < 8; ++r) col_in[r] = tmp[r * 8 + c];
    idct1d_fixed(col_in, col_out);
    for (int r = 0; r < 8; ++r) out[r * 8 + c] = col_out[r];
  }
}

TwiddleTable make_twiddles(std::size_t n) {
  TwiddleTable t;
  const Q q(kFftFrac);
  t.cos_q.reserve(n / 2);
  t.msin_q.reserve(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    t.cos_q.push_back(q.from_double(std::cos(ang)));
    t.msin_q.push_back(q.from_double(-std::sin(ang)));  // stores sin(|ang|)
  }
  return t;
}

void fixed_fft(std::vector<i32>& re, std::vector<i32>& im) {
  const std::size_t n = re.size();
  if (n != im.size()) throw ConfigError("fixed_fft: re/im size mismatch");
  if (!is_pow2(n)) throw ConfigError("fixed_fft: size must be a power of two");
  const unsigned bits = log2_exact(n);
  const TwiddleTable tw = make_twiddles(n);

  // Bit-reversal permutation.
  for (u32 i = 0; i < n; ++i) {
    const u32 j = bit_reverse(i, bits);
    if (j > i) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }

  const i64 round_mul = i64{1} << (kFftFrac - 1);
  // Iterative DIT stages; every stage halves the magnitude ((x+y)/2) so
  // the fixed-point range is never exceeded.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;  // twiddle index stride
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::size_t tj = j * stride;
        const i64 wc = tw.cos_q[tj];
        const i64 ws = -static_cast<i64>(tw.msin_q[tj]);  // = sin(-2pi k/n)
        const std::size_t a = i + j;
        const std::size_t b = a + len / 2;
        // v = x[b] * w  (complex multiply, rounded back to Q(kFftFrac)).
        const i64 vr = (re[b] * wc - im[b] * ws + round_mul) >> kFftFrac;
        const i64 vi = (re[b] * ws + im[b] * wc + round_mul) >> kFftFrac;
        // Butterfly with 1/2 scaling, round-to-nearest on the shift.
        const i64 ur = re[a];
        const i64 ui = im[a];
        re[a] = static_cast<i32>((ur + vr + 1) >> 1);
        im[a] = static_cast<i32>((ui + vi + 1) >> 1);
        re[b] = static_cast<i32>((ur - vr + 1) >> 1);
        im[b] = static_cast<i32>((ui - vi + 1) >> 1);
      }
    }
  }
}

}  // namespace ouessant::util
