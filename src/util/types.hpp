// Common fundamental types and small helpers shared by every subsystem.
#pragma once

#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace ouessant {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Cycle count on the (single) SoC clock domain.
using Cycle = u64;

/// Byte address on the system bus.
using Addr = u32;

/// Error thrown for invalid configuration of a simulated component
/// (the simulation equivalent of an elaboration-time failure).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Error thrown when simulated software or firmware misuses a component
/// (the simulation equivalent of a runtime bus error / bad microcode).
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Number of 32-bit words needed to hold @p bits bits.
constexpr u32 words_for_bits(u32 bits) { return (bits + 31u) / 32u; }

/// True if @p v is a power of two (and non-zero).
constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr u32 log2_exact(u64 v) {
  u32 n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

/// Round @p v up to the next multiple of @p m (m > 0).
constexpr u64 round_up(u64 v, u64 m) { return ((v + m - 1) / m) * m; }

/// Smallest n such that 2^n >= v (v >= 1). ceil_log2(1) == 0.
constexpr u32 ceil_log2(u64 v) {
  u32 n = 0;
  u64 p = 1;
  while (p < v) {
    p <<= 1;
    ++n;
  }
  return n;
}

}  // namespace ouessant
