#include "res/estimate.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ouessant::res {

ResourceEstimate ResourceNode::total() const {
  ResourceEstimate t = self;
  for (const auto& c : children) t += c.total();
  return t;
}

namespace {

void render_node(std::ostringstream& os, const ResourceNode& n, int depth) {
  const ResourceEstimate t = n.total();
  std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  os << std::left << std::setw(36) << (indent + n.name) << std::right
     << std::setw(8) << t.luts << std::setw(8) << t.ffs << std::setw(8)
     << t.bram36 << std::setw(8) << t.dsps << '\n';
  for (const auto& c : n.children) render_node(os, c, depth + 1);
}

}  // namespace

std::string render_report(const ResourceNode& root) {
  std::ostringstream os;
  os << std::left << std::setw(36) << "entity" << std::right << std::setw(8)
     << "LUT" << std::setw(8) << "FF" << std::setw(8) << "BRAM"
     << std::setw(8) << "DSP" << '\n';
  os << std::string(68, '-') << '\n';
  render_node(os, root, 0);
  return os.str();
}

ResourceEstimate est_register(u32 bits) { return {.luts = 0, .ffs = bits}; }

ResourceEstimate est_adder(u32 bits) { return {.luts = bits, .ffs = 0}; }

ResourceEstimate est_mux(u32 inputs, u32 bits) {
  if (inputs <= 1) return {};
  // A 6-LUT implements a 4:1 mux of one bit; tree it up.
  u32 levels_luts = 0;
  u32 n = inputs;
  while (n > 1) {
    const u32 groups = (n + 3) / 4;
    levels_luts += groups;
    n = groups;
  }
  return {.luts = levels_luts * bits};
}

ResourceEstimate est_multiplier(u32 bits) {
  if (bits <= 8) {
    return {.luts = bits * bits / 2};
  }
  // DSP48E1 handles 25x18; wider multipliers cascade.
  const u32 dsps = ((bits + 24) / 25) * ((bits + 17) / 18);
  return {.luts = 20, .dsps = dsps};
}

ResourceEstimate est_fsm(u32 states, u32 outputs) {
  const u32 state_bits = std::max<u32>(1, ceil_log2(states));
  // Next-state logic: ~4 LUTs per state bit, plus one LUT per Moore output.
  return {.luts = state_bits * 4 + outputs, .ffs = state_bits + outputs / 2};
}

ResourceEstimate est_comparator(u32 bits) {
  return {.luts = (bits + 1) / 2};
}

ResourceEstimate est_fifo_storage(u32 depth, u32 width) {
  const u64 total_bits = static_cast<u64>(depth) * width;
  if (total_bits <= 1024) {
    // Distributed RAM: one LUT (as RAM64x1) per 64 bits, roughly.
    return {.luts = static_cast<u32>((total_bits + 63) / 64)};
  }
  // BRAM36 = 36Kb. Width-limited packing: a BRAM36 port is at most 72 bits
  // wide, so wide shallow FIFOs still consume whole BRAMs.
  const u32 by_capacity = static_cast<u32>((total_bits + 36 * 1024 - 1) / (36 * 1024));
  const u32 by_width = (width + 71) / 72;
  return {.bram36 = std::max(by_capacity, by_width)};
}

ResourceEstimate est_fifo_control(u32 depth, u32 wr_width, u32 rd_width) {
  const u32 ptr_bits = std::max<u32>(1, ceil_log2(depth));
  ResourceEstimate e;
  // Two pointers + level counter.
  e += est_register(ptr_bits * 2 + ptr_bits + 1);
  e += est_adder(ptr_bits * 3);
  // Full/empty comparators.
  e += est_comparator(ptr_bits);
  e += est_comparator(ptr_bits);
  // Width-conversion barrel network when widths differ (serialize /
  // deserialize, paper Fig. 2: 32 <-> 96 bits).
  if (wr_width != rd_width) {
    const u32 wide = std::max(wr_width, rd_width);
    const u32 narrow = std::min(wr_width, rd_width);
    const u32 ratio = (wide + narrow - 1) / narrow;
    e += est_register(wide);            // assembly/disassembly register
    e += est_mux(ratio, narrow);        // lane select
    e += est_register(std::max<u32>(1, ceil_log2(ratio)) + 1);  // lane counter
  }
  return e;
}

}  // namespace ouessant::res
