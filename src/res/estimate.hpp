// FPGA resource estimation model.
//
// The paper reports post-synthesis resource usage on a Xilinx Artix7
// (XC7A100T) obtained with XST and "Keep Hierarchy". We cannot run XST, so
// this module provides an analytical per-component estimator calibrated
// against the numbers the paper reports: the whole OCP machinery
// (bus interface + controller + FIFO control) fits in <1000 LUTs and
// <750 FFs, FIFO storage is inferred as BRAM, and RAC size is independent
// of Ouessant. Components expose `resources()` so reports can be composed
// hierarchically exactly like a Keep-Hierarchy synthesis run.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace ouessant::res {

/// Resource usage of one hardware entity on a 7-series-class FPGA.
struct ResourceEstimate {
  u32 luts = 0;    ///< 6-input LUTs
  u32 ffs = 0;     ///< flip-flops
  u32 bram36 = 0;  ///< 36Kb block RAMs (two 18Kb halves count as one)
  u32 dsps = 0;    ///< DSP48 slices

  ResourceEstimate& operator+=(const ResourceEstimate& o) {
    luts += o.luts;
    ffs += o.ffs;
    bram36 += o.bram36;
    dsps += o.dsps;
    return *this;
  }
  friend ResourceEstimate operator+(ResourceEstimate a,
                                    const ResourceEstimate& b) {
    a += b;
    return a;
  }
  friend bool operator==(const ResourceEstimate&,
                         const ResourceEstimate&) = default;
};

/// A named node in a Keep-Hierarchy style report tree.
struct ResourceNode {
  std::string name;
  ResourceEstimate self;               ///< resources of this entity alone
  std::vector<ResourceNode> children;  ///< sub-entities

  /// Total including children.
  [[nodiscard]] ResourceEstimate total() const;
};

/// Render a hierarchy as a synthesis-report-like table.
std::string render_report(const ResourceNode& root);

/// Interface implemented by hardware models that can report their
/// footprint.
class ResourceAware {
 public:
  virtual ~ResourceAware() = default;
  [[nodiscard]] virtual ResourceNode resource_tree() const = 0;
};

// ---------------------------------------------------------------------------
// Calibrated primitive estimators (Artix7 / XST heuristics).
// ---------------------------------------------------------------------------

/// Registers for @p bits bits of state.
ResourceEstimate est_register(u32 bits);

/// A @p bits-bit adder/subtractor (carry chains: ~1 LUT per bit).
ResourceEstimate est_adder(u32 bits);

/// A @p bits-bit 2:1 multiplexer tree with @p inputs inputs.
ResourceEstimate est_mux(u32 inputs, u32 bits);

/// A @p bits x @p bits signed multiplier (maps to DSP48 above 8 bits).
ResourceEstimate est_multiplier(u32 bits);

/// An FSM with @p states states and roughly @p outputs control outputs.
ResourceEstimate est_fsm(u32 states, u32 outputs);

/// A comparator over @p bits bits.
ResourceEstimate est_comparator(u32 bits);

/// FIFO *storage*: @p depth entries of @p width bits. Small FIFOs go to
/// distributed RAM (LUTs); larger ones are inferred as BRAM, as the paper
/// observes ("FIFO memory is inferred as BRAM").
ResourceEstimate est_fifo_storage(u32 depth, u32 width);

/// FIFO *control* (pointers, level counter, full/empty flags, width
/// conversion shift network between @p wr_width and @p rd_width bits).
ResourceEstimate est_fifo_control(u32 depth, u32 wr_width, u32 rd_width);

}  // namespace ouessant::res
