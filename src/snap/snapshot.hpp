// The versioned snapshot container: named sections + integrity trailer.
//
// A Snapshot is an ordered set of named sections, each carrying its own
// schema version and an opaque byte payload (produced by a StateWriter).
// The kernel writes one section per component plus a "kernel" section;
// higher layers (Soc, OffloadService, Injector) add theirs on top. The
// container is what goes to disk:
//
//   "OSNP" magic            (4 bytes)
//   format version          (u32, currently 1)
//   section count           (u32)
//   sections: name_len:u16 name version:u32 size:u64 payload
//   CRC-32 of everything above (u32, polynomial 0xEDB88320)
//
// Compatibility rules (docs/fleet.md): the container format version
// gates parsing outright; per-section versions let an individual
// component evolve its schema and reject (or migrate) old payloads
// without invalidating the whole container format.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "snap/state.hpp"
#include "util/types.hpp"

namespace ouessant::snap {

/// Container format version written after the magic. Bump only when the
/// container layout itself changes.
inline constexpr u32 kFormatVersion = 1;

/// One named, versioned state payload.
struct Section {
  std::string name;
  u32 version = 1;
  std::vector<u8> bytes;
};

/// CRC-32 (IEEE, reflected, poly 0xEDB88320) of @p data. Used as the
/// snapshot trailer; exposed for tests.
u32 crc32(const std::vector<u8>& data);

class Snapshot {
 public:
  /// Adds a section; duplicate names throw (component names are unique
  /// per kernel, so a duplicate means two stacks wrote into one
  /// snapshot).
  void add(std::string name, u32 version, std::vector<u8> bytes);

  bool has(std::string_view name) const;

  /// Section lookup; throws SnapshotError when absent (a restore asking
  /// for a component the snapshot does not contain).
  const Section& section(std::string_view name) const;

  const std::vector<Section>& sections() const { return sections_; }

  /// Flat byte image (magic + version + sections + CRC trailer).
  std::vector<u8> serialize() const;

  /// Parses @p image, validating magic, format version, section
  /// framing, and the CRC trailer. Throws SnapshotError on any defect.
  static Snapshot deserialize(const std::vector<u8>& image);

  /// Writes serialize() to @p path; throws SimError on I/O failure.
  void save_file(const std::string& path) const;

  /// Reads @p path and deserializes it.
  static Snapshot load_file(const std::string& path);

 private:
  std::vector<Section> sections_;
};

}  // namespace ouessant::snap
