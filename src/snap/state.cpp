#include "snap/state.hpp"

#include <cstring>

namespace ouessant::snap {

namespace {

const char* tag_name(Tag t) {
  switch (t) {
    case Tag::kBool: return "bool";
    case Tag::kU8: return "u8";
    case Tag::kU32: return "u32";
    case Tag::kU64: return "u64";
    case Tag::kDouble: return "double";
    case Tag::kString: return "string";
    case Tag::kWords32: return "words32";
    case Tag::kWords64: return "words64";
    case Tag::kBytes: return "bytes";
  }
  return "?";
}

constexpr u32 kLiteralBit = 0x8000'0000u;
constexpr u32 kMaxBlockWords = 0x7fff'ffffu;

}  // namespace

// ---------------------------------------------------------------------------
// StateWriter

void StateWriter::field(Tag tag, std::string_view name) {
  if (name.size() > 255) {
    throw SnapshotError("snapshot field name too long: " +
                        std::string(name));
  }
  buf_.push_back(static_cast<u8>(tag));
  buf_.push_back(static_cast<u8>(name.size()));
  buf_.insert(buf_.end(), name.begin(), name.end());
}

void StateWriter::raw_u32(u32 v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
}

void StateWriter::raw_u64(u64 v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<u8>(v >> (8 * i)));
}

void StateWriter::write_bool(std::string_view name, bool v) {
  field(Tag::kBool, name);
  buf_.push_back(v ? 1 : 0);
}

void StateWriter::write_u8(std::string_view name, u8 v) {
  field(Tag::kU8, name);
  buf_.push_back(v);
}

void StateWriter::write_u32(std::string_view name, u32 v) {
  field(Tag::kU32, name);
  raw_u32(v);
}

void StateWriter::write_u64(std::string_view name, u64 v) {
  field(Tag::kU64, name);
  raw_u64(v);
}

void StateWriter::write_double(std::string_view name, double v) {
  field(Tag::kDouble, name);
  u64 bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  raw_u64(bits);
}

void StateWriter::write_string(std::string_view name, std::string_view v) {
  field(Tag::kString, name);
  raw_u32(static_cast<u32>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void StateWriter::write_words32(std::string_view name,
                                const std::vector<u32>& v) {
  field(Tag::kWords32, name);
  raw_u32(static_cast<u32>(v.size()));
  // Greedy RLE: runs of >= 4 equal words become a run block, everything
  // between them a literal block. The 4-word threshold keeps a literal
  // stream from degenerating into per-word blocks.
  std::size_t i = 0;
  std::size_t lit_begin = 0;
  auto flush_literal = [&](std::size_t end) {
    std::size_t b = lit_begin;
    while (b < end) {
      const std::size_t n = std::min<std::size_t>(end - b, kMaxBlockWords);
      raw_u32(kLiteralBit | static_cast<u32>(n));
      for (std::size_t k = 0; k < n; ++k) raw_u32(v[b + k]);
      b += n;
    }
  };
  while (i < v.size()) {
    std::size_t run = 1;
    while (i + run < v.size() && v[i + run] == v[i] &&
           run < kMaxBlockWords) {
      ++run;
    }
    if (run >= 4) {
      flush_literal(i);
      raw_u32(static_cast<u32>(run));
      raw_u32(v[i]);
      i += run;
      lit_begin = i;
    } else {
      i += run;
    }
  }
  flush_literal(v.size());
}

void StateWriter::write_words64(std::string_view name,
                                const std::vector<u64>& v) {
  field(Tag::kWords64, name);
  raw_u32(static_cast<u32>(v.size()));
  for (u64 w : v) raw_u64(w);
}

void StateWriter::write_bytes(std::string_view name,
                              const std::vector<u8>& v) {
  field(Tag::kBytes, name);
  raw_u32(static_cast<u32>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

// ---------------------------------------------------------------------------
// StateReader

StateReader::StateReader(std::vector<u8> bytes, std::string context)
    : buf_(std::move(bytes)), context_(std::move(context)) {}

void StateReader::fail(const std::string& why) const {
  throw SnapshotError("snapshot [" + context_ + "] at byte " +
                      std::to_string(pos_) + ": " + why);
}

void StateReader::need(std::size_t n) const {
  if (pos_ + n > buf_.size()) {
    fail("truncated (need " + std::to_string(n) + " bytes, have " +
         std::to_string(buf_.size() - pos_) + ")");
  }
}

u8 StateReader::raw_u8() {
  need(1);
  return buf_[pos_++];
}

u32 StateReader::raw_u32() {
  need(4);
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(buf_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

u64 StateReader::raw_u64() {
  need(8);
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(buf_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

void StateReader::expect_field(Tag tag, std::string_view name) {
  const u8 got_tag = raw_u8();
  const u8 name_len = raw_u8();
  need(name_len);
  const std::string_view got_name(
      reinterpret_cast<const char*>(buf_.data() + pos_), name_len);
  if (got_tag != static_cast<u8>(tag) || got_name != name) {
    fail("expected " + std::string(tag_name(tag)) + " '" +
         std::string(name) + "', found tag " + std::to_string(got_tag) +
         " '" + std::string(got_name) + "'");
  }
  pos_ += name_len;
}

bool StateReader::read_bool(std::string_view name) {
  expect_field(Tag::kBool, name);
  const u8 v = raw_u8();
  if (v > 1) fail("bool '" + std::string(name) + "' holds " +
                  std::to_string(v));
  return v != 0;
}

u8 StateReader::read_u8(std::string_view name) {
  expect_field(Tag::kU8, name);
  return raw_u8();
}

u32 StateReader::read_u32(std::string_view name) {
  expect_field(Tag::kU32, name);
  return raw_u32();
}

u64 StateReader::read_u64(std::string_view name) {
  expect_field(Tag::kU64, name);
  return raw_u64();
}

double StateReader::read_double(std::string_view name) {
  expect_field(Tag::kDouble, name);
  const u64 bits = raw_u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string StateReader::read_string(std::string_view name) {
  expect_field(Tag::kString, name);
  const u32 len = raw_u32();
  need(len);
  std::string v(reinterpret_cast<const char*>(buf_.data() + pos_), len);
  pos_ += len;
  return v;
}

std::vector<u32> StateReader::read_words32(std::string_view name) {
  expect_field(Tag::kWords32, name);
  const u32 count = raw_u32();
  std::vector<u32> v;
  v.reserve(count);
  while (v.size() < count) {
    const u32 block = raw_u32();
    if ((block & kLiteralBit) != 0) {
      const u32 n = block & kMaxBlockWords;
      if (v.size() + n > count) fail("RLE literal overruns word count");
      for (u32 k = 0; k < n; ++k) v.push_back(raw_u32());
    } else {
      if (block == 0 || v.size() + block > count) {
        fail("RLE run overruns word count");
      }
      const u32 value = raw_u32();
      v.insert(v.end(), block, value);
    }
  }
  return v;
}

std::vector<u64> StateReader::read_words64(std::string_view name) {
  expect_field(Tag::kWords64, name);
  const u32 count = raw_u32();
  need(static_cast<std::size_t>(count) * 8);
  std::vector<u64> v;
  v.reserve(count);
  for (u32 i = 0; i < count; ++i) v.push_back(raw_u64());
  return v;
}

std::vector<u8> StateReader::read_bytes(std::string_view name) {
  expect_field(Tag::kBytes, name);
  const u32 len = raw_u32();
  need(len);
  std::vector<u8> v(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                    buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return v;
}

void StateReader::expect_end() const {
  if (pos_ != buf_.size()) {
    fail("unconsumed trailing state (" +
         std::to_string(buf_.size() - pos_) + " bytes)");
  }
}

}  // namespace ouessant::snap
