#include "snap/snapshot.hpp"

#include <array>
#include <cstdio>

namespace ouessant::snap {

namespace {

constexpr std::array<char, 4> kMagic = {'O', 'S', 'N', 'P'};

std::array<u32, 256> make_crc_table() {
  std::array<u32, 256> t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB8'8320u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

void put_u16(std::vector<u8>& out, u16 v) {
  out.push_back(static_cast<u8>(v));
  out.push_back(static_cast<u8>(v >> 8));
}

void put_u32(std::vector<u8>& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

void put_u64(std::vector<u8>& out, u64 v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

/// Bounds-checked cursor over a raw image; all failures throw with the
/// byte offset so a truncated or bit-flipped file is diagnosable.
struct Cursor {
  const std::vector<u8>& buf;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw SnapshotError("snapshot image at byte " + std::to_string(pos) +
                        ": " + why);
  }
  void need(std::size_t n) const {
    if (pos + n > buf.size()) fail("truncated");
  }
  u16 u16_() {
    need(2);
    const u16 v = static_cast<u16>(buf[pos] | (buf[pos + 1] << 8));
    pos += 2;
    return v;
  }
  u32 u32_() {
    need(4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(buf[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  u64 u64_() {
    need(8);
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(buf[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
};

}  // namespace

u32 crc32(const std::vector<u8>& data) {
  static const std::array<u32, 256> table = make_crc_table();
  u32 c = 0xFFFF'FFFFu;
  for (u8 b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFF'FFFFu;
}

void Snapshot::add(std::string name, u32 version, std::vector<u8> bytes) {
  if (has(name)) {
    throw SnapshotError("snapshot: duplicate section '" + name + "'");
  }
  sections_.push_back(
      Section{std::move(name), version, std::move(bytes)});
}

bool Snapshot::has(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

const Section& Snapshot::section(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return s;
  }
  throw SnapshotError("snapshot: missing section '" + std::string(name) +
                      "'");
}

std::vector<u8> Snapshot::serialize() const {
  std::vector<u8> out;
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, kFormatVersion);
  put_u32(out, static_cast<u32>(sections_.size()));
  for (const Section& s : sections_) {
    if (s.name.size() > 0xFFFF) {
      throw SnapshotError("snapshot: section name too long: " + s.name);
    }
    put_u16(out, static_cast<u16>(s.name.size()));
    out.insert(out.end(), s.name.begin(), s.name.end());
    put_u32(out, s.version);
    put_u64(out, s.bytes.size());
    out.insert(out.end(), s.bytes.begin(), s.bytes.end());
  }
  put_u32(out, crc32(out));
  return out;
}

Snapshot Snapshot::deserialize(const std::vector<u8>& image) {
  // CRC first: distinguish "corrupted" from "structurally wrong" in the
  // error message, and never parse garbage framing.
  if (image.size() < kMagic.size() + 4 + 4 + 4) {
    throw SnapshotError("snapshot image too short (" +
                        std::to_string(image.size()) + " bytes)");
  }
  std::vector<u8> body(image.begin(), image.end() - 4);
  u32 stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<u32>(image[image.size() - 4 + i]) << (8 * i);
  }
  if (crc32(body) != stored_crc) {
    throw SnapshotError("snapshot CRC mismatch (corrupted image)");
  }

  Cursor c{body};
  c.need(kMagic.size());
  for (char m : kMagic) {
    if (body[c.pos++] != static_cast<u8>(m)) {
      c.fail("bad magic (not an Ouessant snapshot)");
    }
  }
  const u32 version = c.u32_();
  if (version != kFormatVersion) {
    throw SnapshotError("snapshot format version " + std::to_string(version) +
                        " unsupported (this build reads version " +
                        std::to_string(kFormatVersion) + ")");
  }
  const u32 count = c.u32_();
  Snapshot snap;
  for (u32 i = 0; i < count; ++i) {
    const u16 name_len = c.u16_();
    c.need(name_len);
    std::string name(reinterpret_cast<const char*>(body.data() + c.pos),
                     name_len);
    c.pos += name_len;
    const u32 sec_version = c.u32_();
    const u64 size = c.u64_();
    c.need(size);
    std::vector<u8> bytes(body.begin() + static_cast<std::ptrdiff_t>(c.pos),
                          body.begin() +
                              static_cast<std::ptrdiff_t>(c.pos + size));
    c.pos += size;
    snap.add(std::move(name), sec_version, std::move(bytes));
  }
  if (c.pos != body.size()) {
    c.fail("trailing bytes after last section");
  }
  return snap;
}

void Snapshot::save_file(const std::string& path) const {
  const std::vector<u8> image = serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw SimError("snapshot: cannot open '" + path + "' for writing");
  }
  const std::size_t n = std::fwrite(image.data(), 1, image.size(), f);
  const bool ok = (n == image.size()) && (std::fclose(f) == 0);
  if (!ok) {
    throw SimError("snapshot: short write to '" + path + "'");
  }
}

Snapshot Snapshot::load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SimError("snapshot: cannot open '" + path + "'");
  }
  std::vector<u8> image;
  std::array<u8, 65536> chunk;
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
    image.insert(image.end(), chunk.begin(), chunk.begin() + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw SimError("snapshot: read error on '" + path + "'");
  }
  return deserialize(image);
}

}  // namespace ouessant::snap
