// Tagged sequential state streams — the per-component wire format of a
// snapshot section.
//
// A component's save_state() writes a sequence of named, type-tagged
// fields through a StateWriter; restore_state() reads the same sequence
// back through a StateReader. Names and tags are verified on read, so a
// version skew or a reordered field fails loudly with a SnapshotError
// naming the component, the field, and what was found instead — never a
// silent misparse. The format is deliberately sequential (no random
// access): component state is small and ordered, and the name checks
// make the stream self-describing enough for debugging with xxd.
//
// Encoding (little-endian throughout):
//   field   := tag:u8 name_len:u8 name[name_len] payload
//   bool    := u8 (0/1)            u8/u32/u64 := fixed width
//   double  := 8 bytes (bit pattern via u64)
//   string  := u32 len + bytes
//   words32 := u32 count + RLE blocks (see below)
//   words64 := u32 count + raw words
//   bytes   := u32 len + raw bytes
//
// words32 RLE: blocks of (u32 n, payload). If n has bit 31 set, a
// literal block of (n & 0x7fffffff) words follows; otherwise one u32
// value follows, repeated n times. Blocks concatenate until `count`
// words are produced. Memories are mostly zero or mostly repetitive, so
// this keeps SRAM sections proportional to touched data.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace ouessant::snap {

/// Error for every malformed-snapshot condition: bad magic, version
/// skew, truncation, CRC mismatch, or a field tag/name that does not
/// match what restore_state() expects. Derives from SimError so
/// existing catch sites handle it.
class SnapshotError : public SimError {
 public:
  explicit SnapshotError(const std::string& what) : SimError(what) {}
};

/// Field type tags. Values are part of the on-disk format — append
/// only, never renumber.
enum class Tag : u8 {
  kBool = 1,
  kU8 = 2,
  kU32 = 3,
  kU64 = 4,
  kDouble = 5,
  kString = 6,
  kWords32 = 7,
  kWords64 = 8,
  kBytes = 9,
};

/// Builds one component's byte stream, field by field.
class StateWriter {
 public:
  void write_bool(std::string_view name, bool v);
  void write_u8(std::string_view name, u8 v);
  void write_u32(std::string_view name, u32 v);
  void write_u64(std::string_view name, u64 v);
  void write_double(std::string_view name, double v);
  void write_string(std::string_view name, std::string_view v);
  void write_words32(std::string_view name, const std::vector<u32>& v);
  void write_words64(std::string_view name, const std::vector<u64>& v);
  void write_bytes(std::string_view name, const std::vector<u8>& v);

  const std::vector<u8>& bytes() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }

 private:
  void field(Tag tag, std::string_view name);
  void raw_u32(u32 v);
  void raw_u64(u64 v);

  std::vector<u8> buf_;
};

/// Replays one component's byte stream. Every read names the expected
/// field; a mismatch (wrong tag, wrong name, truncated payload) throws
/// SnapshotError with @p context (typically the section name) in the
/// message.
class StateReader {
 public:
  StateReader(std::vector<u8> bytes, std::string context);

  bool read_bool(std::string_view name);
  u8 read_u8(std::string_view name);
  u32 read_u32(std::string_view name);
  u64 read_u64(std::string_view name);
  double read_double(std::string_view name);
  std::string read_string(std::string_view name);
  std::vector<u32> read_words32(std::string_view name);
  std::vector<u64> read_words64(std::string_view name);
  std::vector<u8> read_bytes(std::string_view name);

  /// Throws unless the whole stream has been consumed — catches a
  /// restore_state() that silently ignores trailing saved fields.
  void expect_end() const;

 private:
  [[noreturn]] void fail(const std::string& why) const;
  void expect_field(Tag tag, std::string_view name);
  u8 raw_u8();
  u32 raw_u32();
  u64 raw_u64();
  void need(std::size_t n) const;

  std::vector<u8> buf_;
  std::size_t pos_ = 0;
  std::string context_;
};

}  // namespace ouessant::snap
