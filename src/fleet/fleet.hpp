// Fleet shard layer (ROADMAP: fleet-scale serving) — the first payoff
// of whole-stack snapshot/restore.
//
// One *template* service stack is booted cold and driven through a
// warm-up workload; its snapshot then seeds M independent shards
// (SoC + service stacks), each warm-booted from the same image with its
// own workload seed. The shards are driven round-robin on the host —
// every simulated clock is independent, so interleaving order cannot
// change any shard's result — and their reports are aggregated into
// fleet metrics: total throughput, availability, a merged latency
// histogram, and the warm-fork vs cold-boot wall-time comparison that
// justifies the machinery.
#pragma once

#include <vector>

#include "svc/service.hpp"

namespace ouessant::fleet {

struct FleetConfig {
  /// Shape of every stack in the fleet (template and shards alike —
  /// warm-boot requires identical construction).
  svc::ServiceConfig service{};
  /// Workload the template serves before the snapshot is taken: it
  /// installs the resident microcode, configures IRQs and warms the
  /// caches the shards inherit.
  svc::WorkloadConfig warmup{};
  /// Per-shard workload; `seed` is overridden with base_seed + index.
  svc::WorkloadConfig shard_load{};
  u32 shards = 8;
  u64 base_seed = 0xF1EE'7000ull;
  /// Re-run shard 0 from a second clone of the same image and check the
  /// two reports are bit-identical (fixed-seed reproducibility proof).
  bool verify_reproducible = true;
};

/// One shard's outcome.
struct ShardResult {
  u32 index = 0;
  u64 seed = 0;
  svc::ServiceReport report;
};

struct FleetReport {
  u32 shards = 0;
  u64 total_jobs = 0;
  u64 total_completed = 0;
  u64 total_rejected = 0;
  u64 total_failed = 0;
  /// Completed / intended across the whole fleet.
  [[nodiscard]] double availability() const {
    return total_jobs > 0 ? static_cast<double>(total_completed) /
                                static_cast<double>(total_jobs)
                          : 0.0;
  }
  /// Sum of per-shard throughputs (jobs per million simulated cycles) —
  /// shards run concurrently in the fleet fiction, so rates add.
  double throughput_jpmc = 0.0;
  /// End-to-end latency samples merged across every shard.
  svc::LatencyStats merged_e2e;

  // Host wall time: what the snapshot machinery buys.
  double cold_boot_ms = 0.0;       ///< build + warm up the template
  double fork_ms_per_shard = 0.0;  ///< mean build + restore per shard
  u64 snapshot_bytes = 0;          ///< serialized image size

  /// Shard-0 double-run check result (true when not requested).
  bool reproducible = true;

  std::vector<ShardResult> shard_results;
};

/// Boot the template, snapshot it, fork and serve cfg.shards shards
/// round-robin, aggregate. Throws ConfigError on a config the service
/// layer rejects and SnapshotError if the image fails validation.
[[nodiscard]] FleetReport run_fleet(const FleetConfig& cfg);

}  // namespace ouessant::fleet
