// Fleet shard layer (ROADMAP: fleet-scale serving) — the first payoff
// of whole-stack snapshot/restore.
//
// One *template* service stack is booted cold and driven through a
// warm-up workload; its snapshot then seeds M independent shards
// (SoC + service stacks), each warm-booted from the same image with its
// own workload seed. The shards are driven round-robin on the host —
// every simulated clock is independent, so interleaving order cannot
// change any shard's result — and their reports are aggregated into
// fleet metrics: total throughput, availability, mergeable latency
// sketches, and the warm-fork vs cold-boot wall-time comparison that
// justifies the machinery.
//
// Observability (docs/observability.md, "Fleet-scale observability"):
// per-job latencies stream into DDSketch-style quantile sketches as
// shards retire — never into retained raw sample vectors — so fleet
// p99/p99.9 are deterministic regardless of shard count or merge order
// and fleet memory stays O(sketch), not O(jobs). Optional arms: a
// 1-in-N sampling profiler per shard, per-tenant-class SLO burn-rate
// monitors folded into one ouessant.slo.v1 report, and per-shard flight
// recorders dumped automatically when the fault layer quarantines a
// worker or a watchdog expires. All of it is passive: armed or not,
// shard sim clocks are bit-identical (the fleet_obs_guard proof).
#pragma once

#include <string>
#include <vector>

#include "obs/sketch.hpp"
#include "obs/slo.hpp"
#include "svc/service.hpp"

namespace ouessant::fleet {

/// Observability arms for a fleet run. Everything here is host-side
/// telemetry: arming any combination leaves every shard's simulated
/// clock and payloads bit-identical to the unarmed run.
struct FleetObsConfig {
  /// Relative-error bound for the latency sketches (the documented
  /// guarantee the tier-1 guard enforces).
  double sketch_error = obs::kDefaultSketchError;

  /// Arm the 1-in-N sampling profiler on every shard's dispatcher.
  bool profiler = false;
  obs::ProfileConfig profile{};

  /// Arm per-shard SLO monitors; per-class results merge into
  /// FleetReport::slo. classes must have svc::kNumPriorities entries
  /// (tenant class == job priority).
  bool slo = false;
  obs::SloConfig slo_config{};
  /// When non-empty, the merged ouessant.slo.v1 report is written here.
  std::string slo_report_path;

  /// Arm a per-shard flight recorder (attached to the controller / RAC
  /// / ICAP hooks after restore). When a shard's fault handling
  /// triggers it, the ring is dumped to
  /// `<flight_dump_stem>_shard<i>.flight.json` (no files when the stem
  /// is empty — triggers are still counted).
  bool flight = false;
  std::size_t flight_capacity = 4096;
  std::string flight_dump_stem;

  /// Also stream every job latency into an exact merged LatencyStats
  /// (FleetReport::exact_e2e). O(total jobs) memory — validation runs
  /// only: the tier-1 guard compares sketch quantiles against it.
  bool keep_exact_histogram = false;

  [[nodiscard]] bool armed() const { return profiler || slo || flight; }
};

struct FleetConfig {
  /// Shape of every stack in the fleet (template and shards alike —
  /// warm-boot requires identical construction).
  svc::ServiceConfig service{};
  /// Workload the template serves before the snapshot is taken: it
  /// installs the resident microcode, configures IRQs and warms the
  /// caches the shards inherit.
  svc::WorkloadConfig warmup{};
  /// Per-shard workload; `seed` is overridden with base_seed + index.
  svc::WorkloadConfig shard_load{};
  u32 shards = 8;
  u64 base_seed = 0xF1EE'7000ull;
  /// Re-run shard 0 from a second clone of the same image and check the
  /// two runs are bit-identical (fixed-seed reproducibility proof, via
  /// an order-sensitive digest over every completed job).
  bool verify_reproducible = true;
  FleetObsConfig obs{};
};

/// One shard's outcome. The report's latency histograms are empty by
/// design (raw-sample recording is disabled fleet-wide); the sketch
/// carries this shard's e2e distribution instead.
struct ShardResult {
  u32 index = 0;
  u64 seed = 0;
  svc::ServiceReport report;
  obs::QuantileSketch e2e_sketch;
  /// Order-sensitive FNV-1a digest over (id, wait, e2e) of every
  /// completed job — the reproducibility fingerprint raw sample
  /// comparison used to provide.
  u64 digest = 0;
  bool flight_triggered = false;
  std::string flight_reason;
};

struct FleetReport {
  u32 shards = 0;
  u64 total_jobs = 0;
  u64 total_completed = 0;
  u64 total_rejected = 0;
  u64 total_failed = 0;
  /// Completed / intended across the whole fleet.
  [[nodiscard]] double availability() const {
    return total_jobs > 0 ? static_cast<double>(total_completed) /
                                static_cast<double>(total_jobs)
                          : 0.0;
  }
  /// Sum of per-shard throughputs (jobs per million simulated cycles) —
  /// shards run concurrently in the fleet fiction, so rates add.
  double throughput_jpmc = 0.0;

  /// End-to-end latency across every shard, folded as shards retire.
  /// Merge-order independent: any permutation of shard folds yields
  /// the identical sketch (tested), so fleet p99/p99.9 are
  /// deterministic at any shard count.
  obs::QuantileSketch e2e_sketch;
  /// Exact merged histogram — populated only with keep_exact_histogram
  /// (guard/validation runs).
  svc::LatencyStats exact_e2e;
  /// Peak raw latency samples retained across shard reports (must stay
  /// 0: everything streams through the sketch).
  u64 peak_retained_samples = 0;

  /// Merged SLO outcome (obs.slo runs only; empty otherwise).
  obs::SloReport slo;
  /// Flight-recorder activity (obs.flight runs only).
  u64 flight_triggers = 0;
  std::vector<std::string> flight_dumps;  ///< files written

  // Host wall time: what the snapshot machinery buys.
  double cold_boot_ms = 0.0;       ///< build + warm up the template
  double fork_ms_per_shard = 0.0;  ///< mean build + restore per shard
  u64 snapshot_bytes = 0;          ///< serialized image size

  /// Shard-0 double-run check result (true when not requested).
  bool reproducible = true;

  std::vector<ShardResult> shard_results;
};

/// Boot the template, snapshot it, fork and serve cfg.shards shards
/// round-robin, aggregate. Shards retire (finish + fold + free) the
/// moment they complete, so peak host memory tracks the widest point
/// of live shards, not the whole fleet's history. Throws ConfigError
/// on a config the service layer rejects and SnapshotError if the
/// image fails validation.
[[nodiscard]] FleetReport run_fleet(const FleetConfig& cfg);

}  // namespace ouessant::fleet
