#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "obs/flight.hpp"
#include "obs/profile.hpp"
#include "obs/tracer.hpp"

namespace ouessant::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

// FNV-1a over little-endian u64s: the per-shard reproducibility digest.
// Order-sensitive by construction, so two runs agree iff they completed
// the same jobs with the same latencies in the same order — the
// property raw sample-vector comparison used to prove, without
// retaining the vectors.
constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

u64 fnv1a_u64(u64 h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

/// Per-shard observability state. Declared BEFORE the service in
/// LiveShard so the service (whose components hold raw pointers into
/// these objects) is destroyed first.
struct ShardObs {
  obs::QuantileSketch sketch;
  std::unique_ptr<obs::EventTracer> prof_tracer;
  std::unique_ptr<obs::SamplingProfiler> profiler;
  std::unique_ptr<obs::SloMonitor> slo;
  std::unique_ptr<obs::FlightRecorder> flight;
  u64 digest = kFnvOffset;
};

struct LiveShard {
  u32 index = 0;
  u64 seed = 0;
  ShardObs obs;
  std::unique_ptr<svc::OffloadService> service;
};

/// Build a shard stack, warm-boot it from @p image, arm its telemetry.
/// Observability is wired AFTER restore (the template image carries no
/// recorder state — arming is pure host wiring) and before begin().
std::unique_ptr<LiveShard> fork_shard(const FleetConfig& cfg,
                                      const snap::Snapshot& image,
                                      u32 index,
                                      svc::LatencyStats* exact_e2e) {
  auto ls = std::make_unique<LiveShard>();
  ls->index = index;
  ls->seed = cfg.base_seed + index;
  ls->obs.sketch = obs::QuantileSketch(cfg.obs.sketch_error);
  ls->service = std::make_unique<svc::OffloadService>(cfg.service);
  svc::OffloadService& shard = *ls->service;
  // Per-job latencies stream into the sketch via the observer below;
  // retaining them in the report too would put the O(jobs) memory back.
  shard.set_latency_recording(false);
  shard.restore(image);

  if (cfg.obs.flight) {
    ls->obs.flight = std::make_unique<obs::FlightRecorder>(
        shard.soc().kernel(), cfg.obs.flight_capacity);
    shard.attach_flight_recorder(*ls->obs.flight);
  }
  if (cfg.obs.profiler) {
    ls->obs.prof_tracer =
        std::make_unique<obs::EventTracer>(shard.soc().kernel());
    ls->obs.profiler = std::make_unique<obs::SamplingProfiler>(
        *ls->obs.prof_tracer, cfg.obs.profile);
    shard.attach_profiler(*ls->obs.profiler);
  }
  if (cfg.obs.slo) {
    ls->obs.slo = std::make_unique<obs::SloMonitor>(cfg.obs.slo_config);
  }

  ShardObs* ob = &ls->obs;
  shard.set_job_observer([ob, exact_e2e](const svc::Job& job) {
    const u64 e2e = job.end_to_end();
    ob->digest = fnv1a_u64(ob->digest, job.id);
    ob->digest = fnv1a_u64(ob->digest, job.queue_wait());
    ob->digest = fnv1a_u64(ob->digest, e2e);
    ob->sketch.add(e2e);
    if (ob->slo != nullptr) {
      ob->slo->record_latency(static_cast<u32>(job.prio), job.complete, e2e);
    }
    if (exact_e2e != nullptr) exact_e2e->add(e2e);
  });
  if (ls->obs.slo != nullptr) {
    sim::Kernel* kernel = &shard.soc().kernel();
    shard.dispatcher().set_failure_hook([ob, kernel](const svc::Job& job) {
      ob->slo->record(static_cast<u32>(job.prio), kernel->now(), false);
    });
  }

  svc::WorkloadConfig load = cfg.shard_load;
  load.seed = ls->seed;
  shard.begin(load, /*warm=*/true);
  return ls;
}

}  // namespace

FleetReport run_fleet(const FleetConfig& cfg) {
  if (cfg.shards == 0) {
    throw ConfigError("run_fleet: shards must be >= 1");
  }
  if (cfg.obs.slo &&
      cfg.obs.slo_config.classes.size() != svc::kNumPriorities) {
    throw ConfigError(
        "run_fleet: slo_config needs one objective per tenant class "
        "(svc::kNumPriorities)");
  }
  FleetReport fleet;
  fleet.shards = cfg.shards;
  fleet.e2e_sketch = obs::QuantileSketch(cfg.obs.sketch_error);

  // Cold boot: build the template stack and serve the warm-up workload.
  // This is the path every shard would pay without snapshots.
  const auto cold_t0 = Clock::now();
  svc::OffloadService tmpl(cfg.service);
  tmpl.run(cfg.warmup);
  fleet.cold_boot_ms = ms_since(cold_t0);

  const snap::Snapshot image = tmpl.snapshot();
  fleet.snapshot_bytes = image.serialize().size();

  svc::LatencyStats* exact =
      cfg.obs.keep_exact_histogram ? &fleet.exact_e2e : nullptr;

  // Fork the shards. Each is an independent stack with its own kernel;
  // construction + restore + telemetry arming is the whole warm-boot
  // cost.
  std::vector<std::unique_ptr<LiveShard>> live;
  live.reserve(cfg.shards);
  const auto fork_t0 = Clock::now();
  for (u32 i = 0; i < cfg.shards; ++i) {
    live.push_back(fork_shard(cfg, image, i, exact));
  }
  fleet.fork_ms_per_shard =
      ms_since(fork_t0) / static_cast<double>(cfg.shards);

  fleet.shard_results.resize(cfg.shards);
  u64 retained_now = 0;

  // Retire a finished shard NOW: finish its report, fold its sketch /
  // SLO window / flight state into the fleet aggregates, then free the
  // whole stack. Folding order is whatever completion order the
  // workloads produce — safe, because every fold is commutative and
  // associative (sketch bucket adds, SLO count adds, scalar sums).
  auto retire = [&](std::unique_ptr<LiveShard>& ls) {
    ShardResult res;
    res.index = ls->index;
    res.seed = ls->seed;
    res.report = ls->service->finish();
    res.e2e_sketch = std::move(ls->obs.sketch);
    res.digest = ls->obs.digest;

    fleet.total_jobs += res.report.jobs;
    fleet.total_completed += res.report.completed;
    fleet.total_rejected += res.report.rejected;
    fleet.total_failed += res.report.failed;
    if (res.report.makespan() > 0) {
      fleet.throughput_jpmc +=
          static_cast<double>(res.report.completed) * 1e6 /
          static_cast<double>(res.report.makespan());
    }
    // The memory fix this layer exists to keep fixed: raw latency
    // samples must never accumulate per shard — everything streams
    // through the sketch. A non-zero count here means latency
    // recording leaked back on.
    const u64 retained = res.report.e2e.samples().size() +
                         res.report.wait.samples().size() +
                         res.report.service.samples().size();
    if (retained > 0) {
      throw SimError("run_fleet: shard " + std::to_string(res.index) +
                     " retained " + std::to_string(retained) +
                     " raw latency samples (sketch streaming bypassed)");
    }
    retained_now += retained;
    fleet.peak_retained_samples =
        std::max(fleet.peak_retained_samples, retained_now);

    fleet.e2e_sketch.merge(res.e2e_sketch);
    if (ls->obs.slo != nullptr) fleet.slo.merge(ls->obs.slo->report());
    if (ls->obs.flight != nullptr && ls->obs.flight->triggered()) {
      ++fleet.flight_triggers;
      res.flight_triggered = true;
      res.flight_reason = ls->obs.flight->reason();
      if (!cfg.obs.flight_dump_stem.empty()) {
        const std::string path = cfg.obs.flight_dump_stem + "_shard" +
                                 std::to_string(res.index) + ".flight.json";
        ls->obs.flight->write_json(path);
        fleet.flight_dumps.push_back(path);
      }
    }
    fleet.shard_results[res.index] = std::move(res);
    ls.reset();  // free the stack: live memory tracks unfinished shards
  };

  // Round-robin drive: one service pass per shard per lap. Simulated
  // clocks are independent, so the interleaving is pure host
  // scheduling — no shard can observe another.
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    for (auto& ls : live) {
      if (ls == nullptr) continue;
      if (!ls->service->finished() && !ls->service->step()) {
        all_done = false;
        continue;
      }
      retire(ls);
    }
  }

  if (!cfg.obs.slo_report_path.empty() && cfg.obs.slo) {
    fleet.slo.write_json(cfg.obs.slo_report_path);
  }

  if (cfg.verify_reproducible) {
    // A second clone with shard 0's seed must reproduce shard 0's run
    // bit-for-bit: same completions, same clocks, same per-job latency
    // digest. The redo runs UNARMED (no profiler/SLO/flight), so a pass
    // here is also the passivity proof in miniature: telemetry arming
    // on shard 0 did not move its simulated clock.
    FleetConfig redo_cfg = cfg;
    redo_cfg.obs = FleetObsConfig{};
    redo_cfg.obs.sketch_error = cfg.obs.sketch_error;
    auto redo = fork_shard(redo_cfg, image, 0, nullptr);
    while (!redo->service->step()) {
    }
    const svc::ServiceReport again = redo->service->finish();
    const u64 redo_digest = redo->obs.digest;
    const svc::ServiceReport& first = fleet.shard_results.front().report;
    fleet.reproducible = again.completed == first.completed &&
                         again.rejected == first.rejected &&
                         again.start == first.start &&
                         again.end == first.end &&
                         redo_digest == fleet.shard_results.front().digest;
  }

  return fleet;
}

}  // namespace ouessant::fleet
