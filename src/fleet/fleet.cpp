#include "fleet/fleet.hpp"

#include <chrono>
#include <memory>

namespace ouessant::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Build a shard stack and warm-boot it from @p image with @p seed.
std::unique_ptr<svc::OffloadService> fork_shard(const FleetConfig& cfg,
                                                const snap::Snapshot& image,
                                                u64 seed) {
  auto shard = std::make_unique<svc::OffloadService>(cfg.service);
  shard->restore(image);
  svc::WorkloadConfig load = cfg.shard_load;
  load.seed = seed;
  shard->begin(load, /*warm=*/true);
  return shard;
}

}  // namespace

FleetReport run_fleet(const FleetConfig& cfg) {
  if (cfg.shards == 0) {
    throw ConfigError("run_fleet: shards must be >= 1");
  }
  FleetReport fleet;
  fleet.shards = cfg.shards;

  // Cold boot: build the template stack and serve the warm-up workload.
  // This is the path every shard would pay without snapshots.
  const auto cold_t0 = Clock::now();
  svc::OffloadService tmpl(cfg.service);
  tmpl.run(cfg.warmup);
  fleet.cold_boot_ms = ms_since(cold_t0);

  const snap::Snapshot image = tmpl.snapshot();
  fleet.snapshot_bytes = image.serialize().size();

  // Fork the shards. Each is an independent stack with its own kernel;
  // construction + restore is the whole warm-boot cost.
  std::vector<std::unique_ptr<svc::OffloadService>> shards;
  shards.reserve(cfg.shards);
  const auto fork_t0 = Clock::now();
  for (u32 i = 0; i < cfg.shards; ++i) {
    shards.push_back(fork_shard(cfg, image, cfg.base_seed + i));
  }
  fleet.fork_ms_per_shard =
      ms_since(fork_t0) / static_cast<double>(cfg.shards);

  // Round-robin drive: one service pass per shard per lap. Simulated
  // clocks are independent, so the interleaving is pure host
  // scheduling — no shard can observe another.
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    for (auto& shard : shards) {
      if (!shard->finished()) all_done &= shard->step();
    }
  }

  for (u32 i = 0; i < cfg.shards; ++i) {
    ShardResult res;
    res.index = i;
    res.seed = cfg.base_seed + i;
    res.report = shards[i]->finish();
    fleet.total_jobs += res.report.jobs;
    fleet.total_completed += res.report.completed;
    fleet.total_rejected += res.report.rejected;
    fleet.total_failed += res.report.failed;
    if (res.report.makespan() > 0) {
      fleet.throughput_jpmc +=
          static_cast<double>(res.report.completed) * 1e6 /
          static_cast<double>(res.report.makespan());
    }
    for (u64 s : res.report.e2e.samples()) fleet.merged_e2e.add(s);
    fleet.shard_results.push_back(std::move(res));
  }

  if (cfg.verify_reproducible) {
    // A second clone with shard 0's seed must reproduce shard 0's run
    // bit-for-bit: same completions, same makespan, same latency
    // samples in the same order.
    auto redo = fork_shard(cfg, image, cfg.base_seed);
    while (!redo->step()) {
    }
    const svc::ServiceReport again = redo->finish();
    const svc::ServiceReport& first = fleet.shard_results.front().report;
    fleet.reproducible = again.completed == first.completed &&
                         again.rejected == first.rejected &&
                         again.start == first.start &&
                         again.end == first.end &&
                         again.e2e.samples() == first.e2e.samples() &&
                         again.wait.samples() == first.wait.samples();
  }

  return fleet;
}

}  // namespace ouessant::fleet
