// Core bus abstractions shared by every interconnect model.
//
// The paper's OCP talks to the SoC through a bus-specific interface FSM
// (Fig. 3, "System Bus (AHB, AXI, PLB, ...)"). We model that portability
// boundary with an abstract Bus: masters obtain a BusMasterPort, slaves
// implement BusSlave, and concrete interconnects (AhbBus, AxiLiteBus)
// provide the protocol timing.
#pragma once

#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "util/types.hpp"

namespace ouessant::bus {

class InterconnectModel;

/// Response of a slave to a single word access.
struct SlaveResponse {
  u32 data = 0;         ///< read data (ignored for writes)
  u32 wait_states = 0;  ///< extra cycles before the beat completes
};

/// A memory-mapped slave. Addresses passed in are absolute bus addresses;
/// slaves receive only accesses inside their decoded range.
class BusSlave {
 public:
  virtual ~BusSlave() = default;

  /// Word read at byte address @p addr (word aligned).
  virtual SlaveResponse read_word(Addr addr) = 0;

  /// Word write; returns the number of wait states.
  virtual u32 write_word(Addr addr, u32 data) = 0;

  /// True when this slave is pure storage with no simulation side
  /// channels: an access mutates nothing outside the slave itself — no
  /// component wakes, no IRQ edges, no registers another component
  /// polls. Only such slaves may be accessed eagerly by the
  /// interconnect's batched burst path; register files (OCP interfaces,
  /// IRQ controllers, DMA engines) return the conservative default and
  /// keep exact per-beat access timing.
  [[nodiscard]] virtual bool batchable_slave() const { return false; }

  [[nodiscard]] virtual std::string slave_name() const = 0;
};

/// Per-beat data producer for streamed write bursts (e.g. the OCP pulling
/// words out of a RAC output FIFO while mastering the bus).
///
/// The bulk_* pair lets the interconnect's batched-burst fast path drain
/// a whole grant's worth of beats in one tick. bulk_ready(want) answers
/// "if the bus took `want` beats on `want` consecutive cycles starting
/// now, with nothing else running, would every take_beat() succeed
/// without a stall — and would the result be bit-identical to doing so?"
/// A source that cannot promise that (another component drains/fills the
/// backing store concurrently, a fault hook rewrites beats, or it simply
/// does not implement bulk transfers) returns 0 and the bus falls back
/// to per-beat ticking. The default is that conservative 0.
class BeatSource {
 public:
  virtual ~BeatSource() = default;
  [[nodiscard]] virtual bool beat_ready() const = 0;
  virtual u32 take_beat() = 0;

  /// Beats deliverable back-to-back right now (0 = use per-beat path).
  [[nodiscard]] virtual u32 bulk_ready(u32 want) const {
    (void)want;
    return 0;
  }
  /// Take @p n beats at once; only called after bulk_ready(n) >= n.
  virtual void bulk_take(u32 n, u32* out) {
    for (u32 i = 0; i < n; ++i) out[i] = take_beat();
  }
};

/// Per-beat data consumer for streamed read bursts (e.g. the OCP pushing
/// words into a RAC input FIFO as they arrive from memory). See
/// BeatSource for the bulk_* contract; bulk_space() is the mirror image
/// ("would `want` put_beat() calls on consecutive cycles all succeed?").
class BeatSink {
 public:
  virtual ~BeatSink() = default;
  [[nodiscard]] virtual bool beat_space() const = 0;
  virtual void put_beat(u32 data) = 0;

  /// Beats acceptable back-to-back right now (0 = use per-beat path).
  [[nodiscard]] virtual u32 bulk_space(u32 want) const {
    (void)want;
    return 0;
  }
  /// Accept @p n beats at once; only called after bulk_space(n) >= n.
  virtual void bulk_put(u32 n, const u32* data) {
    for (u32 i = 0; i < n; ++i) put_beat(data[i]);
  }
};

/// Statistics a master port accumulates over its lifetime.
struct MasterStats {
  u64 transactions = 0;
  u64 beats = 0;
  u64 wait_cycles = 0;    ///< slave-inserted wait states
  u64 stall_cycles = 0;   ///< master-side stalls (source/sink not ready)
  u64 grant_cycles = 0;   ///< arbitration + address phases
};

/// Handle through which a master issues transactions. Created by a Bus via
/// connect_master(); owned by the bus.
class BusMasterPort {
 public:
  explicit BusMasterPort(std::string name, int priority)
      : name_(std::move(name)), priority_(priority) {}

  BusMasterPort(const BusMasterPort&) = delete;
  BusMasterPort& operator=(const BusMasterPort&) = delete;

  /// Buffered read of @p beats consecutive words starting at @p addr.
  void start_read(Addr addr, u32 beats = 1);

  /// Buffered write of @p data starting at @p addr.
  void start_write(Addr addr, std::vector<u32> data);

  /// Streamed read: each arriving word is pushed into @p sink.
  void start_read_stream(Addr addr, u32 beats, BeatSink& sink);

  /// Streamed write: each beat's data is pulled from @p source.
  void start_write_stream(Addr addr, u32 beats, BeatSource& source);

  /// True while a transaction is queued or in flight.
  [[nodiscard]] bool busy() const { return active_; }

  /// True when the last transaction terminated with a slave ERROR
  /// response (injected fault). Cleared by the next start_*().
  [[nodiscard]] bool faulted() const { return faulted_; }

  /// Abort the in-flight transaction, releasing the grant if this port
  /// holds it. No-op when idle. Used by the controller's soft reset;
  /// defined in interconnect.cpp (needs the interconnect's grant state).
  void abort();

  /// Read data of the last completed buffered read.
  [[nodiscard]] const std::vector<u32>& rdata() const { return rdata_; }

  /// Convenience: single-word read result.
  [[nodiscard]] u32 rdata0() const {
    if (rdata_.empty()) throw SimError("BusMasterPort: no read data");
    return rdata_[0];
  }

  [[nodiscard]] const MasterStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int priority() const { return priority_; }

  /// Wake @p c when the in-flight transaction completes (or errors), so a
  /// component gated while polling busy() observes the completion edge.
  void wake_on_complete(sim::Component& c) { completion_waiter_ = &c; }

  /// Snapshot-restore hook: reattach the streamed endpoints of an
  /// in-flight transaction. A snapshot records only *whether* a sink or
  /// source was attached (they are wiring, not state); the component
  /// that issued the streamed transfer (the OCP controller) re-selects
  /// its FIFO adapter and calls this during its own restore_state().
  void restore_stream(BeatSink* sink, BeatSource* source) {
    sink_ = sink;
    source_ = source;
  }

 private:
  friend class InterconnectModel;

  void begin(Addr addr, bool write, u32 beats) {
    if (active_) {
      throw SimError("BusMasterPort " + name_ +
                     ": start while transaction in flight");
    }
    if (addr % 4 != 0) {
      throw SimError("BusMasterPort " + name_ + ": unaligned address");
    }
    if (beats == 0) {
      throw SimError("BusMasterPort " + name_ + ": zero-length burst");
    }
    addr_ = addr;
    write_ = write;
    beats_ = beats;
    active_ = true;
    faulted_ = false;
    sink_ = nullptr;
    source_ = nullptr;
    wdata_.clear();
    rdata_.clear();
    wdata_index_ = 0;
    // A new request must un-gate the interconnect's clock.
    if (bus_ != nullptr) bus_->wake();
  }

  std::string name_;
  int priority_;

  sim::Component* bus_ = nullptr;                // owning interconnect
  InterconnectModel* owner_ = nullptr;           // same object, typed
  sim::Component* completion_waiter_ = nullptr;  // gated busy()-poller

  // Interned kernel counters (<bus>.<port>.beats / .transactions),
  // bumped by the interconnect on the hot beat-completion path.
  sim::Stats::Handle h_beats_;
  sim::Stats::Handle h_transactions_;

  // Transaction state (owned by the interconnect while active).
  bool active_ = false;
  bool faulted_ = false;
  Addr addr_ = 0;
  bool write_ = false;
  u32 beats_ = 0;
  std::vector<u32> wdata_;
  std::size_t wdata_index_ = 0;
  std::vector<u32> rdata_;
  BeatSink* sink_ = nullptr;
  BeatSource* source_ = nullptr;

  MasterStats stats_;
};

inline void BusMasterPort::start_read(Addr addr, u32 beats) {
  begin(addr, /*write=*/false, beats);
}

inline void BusMasterPort::start_write(Addr addr, std::vector<u32> data) {
  begin(addr, /*write=*/true, static_cast<u32>(data.size()));
  wdata_ = std::move(data);
}

inline void BusMasterPort::start_read_stream(Addr addr, u32 beats,
                                             BeatSink& sink) {
  begin(addr, /*write=*/false, beats);
  sink_ = &sink;
}

inline void BusMasterPort::start_write_stream(Addr addr, u32 beats,
                                              BeatSource& source) {
  begin(addr, /*write=*/true, beats);
  source_ = &source;
}

}  // namespace ouessant::bus
