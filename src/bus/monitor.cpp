#include "bus/monitor.hpp"

#include <set>
#include <sstream>

namespace ouessant::bus {

MonitorReport check_log(const std::vector<TxnRecord>& log,
                        const BusTimingConfig& timing) {
  MonitorReport r;
  auto fail = [&r](const std::string& msg) {
    r.ok = false;
    r.violations.push_back(msg);
  };

  std::set<Cycle> completion_cycles;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const TxnRecord& t = log[i];
    std::ostringstream id;
    id << "txn#" << i << " (" << t.master << (t.write ? " W " : " R ")
       << "0x" << std::hex << t.addr << std::dec << " x" << t.beats << ")";

    if (t.addr % 4 != 0) fail(id.str() + ": unaligned address");
    if (t.beats == 0) fail(id.str() + ": zero-length burst");
    if (t.end < t.start) fail(id.str() + ": ends before it starts");

    // Minimum cycles: one address phase per grant chunk + one per beat.
    const u32 grants =
        (t.beats + timing.max_beats_per_grant - 1) / timing.max_beats_per_grant;
    const u64 min_cycles =
        static_cast<u64>(grants) * timing.address_phase_cycles + t.beats;
    // start is the cycle of the first grant; end is the cycle index after
    // the final beat's commit, so duration = end - start + 1 >= min.
    if (t.end - t.start + 1 < min_cycles) {
      fail(id.str() + ": faster than protocol minimum");
    }

    if (!completion_cycles.insert(t.end).second) {
      fail(id.str() + ": two transactions complete on the same cycle");
    }
  }
  return r;
}

std::string render_log(const std::vector<TxnRecord>& log) {
  std::ostringstream os;
  for (const auto& t : log) {
    os << '[' << t.start << ".." << t.end << "] " << t.master << ' '
       << (t.write ? 'W' : 'R') << " 0x" << std::hex << t.addr << std::dec
       << " x" << t.beats << '\n';
  }
  return os.str();
}

}  // namespace ouessant::bus
