#include "bus/interconnect.hpp"

#include <algorithm>
#include <cstdio>

#include "snap/state.hpp"

namespace ouessant::bus {

InterconnectModel::InterconnectModel(sim::Kernel& kernel, std::string name,
                                     BusTimingConfig cfg)
    : sim::Component(kernel, std::move(name)), cfg_(cfg) {
  if (cfg_.max_beats_per_grant == 0) {
    throw ConfigError("InterconnectModel: max_beats_per_grant must be >= 1");
  }
  h_batched_chunks_ =
      this->kernel().stats().intern(this->name() + ".batched_chunks");
}

BusMasterPort& InterconnectModel::connect_master(const std::string& name,
                                                 int priority) {
  masters_.push_back(std::make_unique<BusMasterPort>(name, priority));
  BusMasterPort& p = *masters_.back();
  p.bus_ = this;
  p.owner_ = this;
  p.h_beats_ = kernel().stats().intern(this->name() + "." + name + ".beats");
  p.h_transactions_ =
      kernel().stats().intern(this->name() + "." + name + ".transactions");
  return p;
}

void InterconnectModel::connect_slave(BusSlave& slave, Addr base, u32 size) {
  if (size == 0 || base % 4 != 0 || size % 4 != 0) {
    throw ConfigError("connect_slave(" + slave.slave_name() +
                      "): bad base/size");
  }
  // The decode window must fit the 32-bit address space: a region that
  // wraps past 2^32 would make decode()'s `addr - base < size` test match
  // addresses the mapping never intended to claim.
  if (static_cast<u64>(base) + size > (u64{1} << 32)) {
    throw ConfigError("connect_slave(" + slave.slave_name() +
                      "): region wraps the 32-bit address space");
  }
  for (const auto& m : map_) {
    const u64 a0 = base, a1 = static_cast<u64>(base) + size;
    const u64 b0 = m.base, b1 = static_cast<u64>(m.base) + m.size;
    if (a0 < b1 && b0 < a1) {
      throw ConfigError("connect_slave(" + slave.slave_name() +
                        "): overlaps " + m.slave->slave_name());
    }
  }
  map_.push_back({base, size, &slave});
}

BusSlave& InterconnectModel::decode(Addr addr) const {
  for (const auto& m : map_) {
    if (addr >= m.base && addr - m.base < m.size) return *m.slave;
  }
  throw SimError(name() + ": bus error (no slave at 0x" +
                 [addr] {
                   char buf[16];
                   std::snprintf(buf, sizeof buf, "%08X", addr);
                   return std::string(buf);
                 }() +
                 ")");
}

bool InterconnectModel::is_mapped(Addr addr) const {
  return std::any_of(map_.begin(), map_.end(), [addr](const Mapping& m) {
    return addr >= m.base && addr - m.base < m.size;
  });
}

BusMasterPort* InterconnectModel::select_master() {
  if (masters_.empty()) return nullptr;
  if (cfg_.arbitration == Arbitration::kRoundRobin) {
    for (std::size_t i = 0; i < masters_.size(); ++i) {
      const std::size_t idx = (rr_next_ + i) % masters_.size();
      if (masters_[idx]->active_) {
        rr_next_ = (idx + 1) % masters_.size();
        return masters_[idx].get();
      }
    }
    return nullptr;
  }
  BusMasterPort* best = nullptr;
  for (const auto& m : masters_) {
    if (m->active_ && (best == nullptr || m->priority() < best->priority())) {
      best = m.get();
    }
  }
  return best;
}

void InterconnectModel::set_tracer(obs::EventTracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) track_ = tracer_->track("bus." + name());
}

MasterStats InterconnectModel::master_totals() const {
  MasterStats total;
  for (const auto& m : masters_) {
    total.transactions += m->stats().transactions;
    total.beats += m->stats().beats;
    total.wait_cycles += m->stats().wait_cycles;
    total.stall_cycles += m->stats().stall_cycles;
    total.grant_cycles += m->stats().grant_cycles;
  }
  return total;
}

void InterconnectModel::note_txn_wait(BusMasterPort& m) {
  if (!logging_ && tracer_ == nullptr) return;
  auto it = open_.find(&m);
  if (it != open_.end()) ++it->second.waits;
}

void InterconnectModel::note_txn_stall(BusMasterPort& m) {
  if (!logging_ && tracer_ == nullptr) return;
  auto it = open_.find(&m);
  if (it != open_.end()) ++it->second.stalls;
}

bool InterconnectModel::is_quiescent() const {
  if (batch_active_) return true;  // window end is armed in the wake heap
  if (granted_ != nullptr) return false;
  return std::none_of(masters_.begin(), masters_.end(),
                      [](const auto& m) { return m->active_; });
}

void InterconnectModel::tick_compute() {
  if (batch_active_) {
    // Mid-window ticks (another master's begin() woke us) are no-ops:
    // per-beat, that master would simply wait out the grant too. The
    // accounting below must not run — the window already owns these
    // cycles.
    if (kernel().now() < batch_end_) return;
    finish_batch();
    return;
  }
  // Credit cycles spent clock-gated: the bus only sleeps while idle, so
  // every skipped cycle is an idle cycle the seed sweep would have
  // counted one by one.
  idle_cycles_ += pending_idle_credit();
  next_expected_tick_ = kernel().now() + 1;
  if (granted_ == nullptr) {
    granted_ = select_master();
    if (granted_ == nullptr) {
      ++idle_cycles_;
      return;
    }
    grant_addr_cycles_left_ = cfg_.address_phase_cycles;
    grant_beats_left_ = std::min(cfg_.max_beats_per_grant, granted_->beats_);
    if ((logging_ || tracer_ != nullptr) &&
        open_.find(granted_) == open_.end()) {
      // First grant for this transaction: open a log record.
      open_[granted_] = TxnRecord{.start = kernel().now(),
                                  .end = 0,
                                  .master = granted_->name(),
                                  .addr = granted_->addr_,
                                  .write = granted_->write_,
                                  .beats = granted_->beats_};
    }
    if (try_batch_chunk()) return;
  }
  ++busy_cycles_;
  BusMasterPort& m = *granted_;

  if (grant_addr_cycles_left_ > 0) {
    --grant_addr_cycles_left_;
    ++m.stats_.grant_cycles;
    return;
  }

  if (wait_left_ > 0) {
    --wait_left_;
    ++m.stats_.wait_cycles;
    note_txn_wait(m);
    if (wait_left_ == 0 && beat_in_flight_) {
      complete_beat(inflight_data_);
    }
    return;
  }

  // Injected ERROR response: terminates the transaction like a slave
  // exception below, but non-fatally — the master observes faulted()
  // and its OCP escalates through the ERR status bit instead of the
  // simulation aborting. The error cycle counts as a wait state to keep
  // beats+grants+waits+stalls == busy_cycles.
  if (fault_hook_ != nullptr &&
      fault_hook_->beat_error(m.name_, m.addr_, m.write_, kernel().now())) {
    ++m.stats_.wait_cycles;
    note_txn_wait(m);
    error_response(m);
    return;
  }

  // Issue the next data beat. A slave exception is the model's ERROR
  // response: it terminates the transfer (so the master port is reusable)
  // and propagates to the simulation driver.
  try {
    if (m.write_) {
      u32 data = 0;
      if (m.source_ != nullptr) {
        if (!m.source_->beat_ready()) {
          ++m.stats_.stall_cycles;
          note_txn_stall(m);
          return;
        }
        data = m.source_->take_beat();
      } else {
        data = m.wdata_[m.wdata_index_];
      }
      const u32 ws = decode(m.addr_).write_word(m.addr_, data);
      if (ws > 0) {
        wait_left_ = ws;
        beat_in_flight_ = true;
        inflight_data_ = 0;
      } else {
        complete_beat(0);
      }
    } else {
      if (m.sink_ != nullptr && !m.sink_->beat_space()) {
        ++m.stats_.stall_cycles;
        note_txn_stall(m);
        return;
      }
      const SlaveResponse resp = decode(m.addr_).read_word(m.addr_);
      if (resp.wait_states > 0) {
        wait_left_ = resp.wait_states;
        beat_in_flight_ = true;
        inflight_data_ = resp.data;
      } else {
        complete_beat(resp.data);
      }
    }
  } catch (...) {
    m.active_ = false;
    granted_ = nullptr;
    wait_left_ = 0;
    beat_in_flight_ = false;
    open_.erase(&m);
    if (m.completion_waiter_ != nullptr) m.completion_waiter_->wake();
    throw;
  }
}

bool InterconnectModel::try_batch_chunk() {
  // Observers see per-beat state: any armed instrument keeps the
  // per-beat loop (passivity discipline — instrumented runs may differ
  // in host behavior, unarmed runs stay bit-identical either way).
  if (!batching_enabled_ || logging_ || tracer_ != nullptr ||
      fault_hook_ != nullptr || !snoopers_.empty()) {
    return false;
  }
  if (!kernel().gating() || kernel().has_samplers()) return false;
  // cost >= 2 below needs at least one address-phase cycle, so the
  // window's final tick is strictly after the grant tick.
  if (cfg_.address_phase_cycles == 0) return false;
  BusMasterPort& m = *granted_;
  const u32 chunk = grant_beats_left_;
  // Every beat of the chunk must decode into one slave mapping — a hole
  // mid-chunk must raise its bus error on the exact per-beat cycle.
  const Mapping* map = nullptr;
  for (const auto& mm : map_) {
    if (m.addr_ >= mm.base && static_cast<u64>(m.addr_) + 4ull * chunk <=
                                  static_cast<u64>(mm.base) + mm.size) {
      map = &mm;
      break;
    }
  }
  if (map == nullptr) return false;
  // Only pure-storage slaves may run their accesses early; a register
  // file's side effects (start bits, IRQ acks) must land on the exact
  // per-beat cycle.
  if (!map->slave->batchable_slave()) return false;
  // Streamed endpoints must promise the whole chunk without a stall.
  if (m.write_ && m.source_ != nullptr && m.source_->bulk_ready(chunk) < chunk) {
    return false;
  }
  if (!m.write_ && m.sink_ != nullptr && m.sink_->bulk_space(chunk) < chunk) {
    return false;
  }

  // Run the chunk's slave accesses eagerly, accumulating the cycles the
  // per-beat loop would spend: one address phase per grant, then one
  // cycle per beat plus its wait states. A slave throw lands on the
  // beat-issue cycle (which per-beat counts busy before throwing).
  u64 cost = cfg_.address_phase_cycles;
  batch_beats_ = 0;
  batch_waits_ = 0;
  batch_error_ = nullptr;
  for (u32 i = 0; i < chunk; ++i) {
    const Addr a = m.addr_ + 4u * batch_beats_;
    try {
      if (m.write_) {
        u32 data = 0;
        if (m.source_ != nullptr) {
          m.source_->bulk_take(1, &data);  // consumed before the slave
                                           // access, as take_beat() is
        } else {
          data = m.wdata_[m.wdata_index_ + batch_beats_];
        }
        const u32 ws = map->slave->write_word(a, data);
        batch_waits_ += ws;
        cost += 1 + ws;
      } else {
        const SlaveResponse resp = map->slave->read_word(a);
        if (m.sink_ != nullptr) {
          m.sink_->bulk_put(1, &resp.data);
        } else {
          m.rdata_.push_back(resp.data);
        }
        batch_waits_ += resp.wait_states;
        cost += 1 + resp.wait_states;
      }
      ++batch_beats_;
    } catch (...) {
      batch_error_ = std::current_exception();
      cost += 1;
      break;
    }
  }
  busy_cycles_ += cost;
  batch_active_ = true;
  batch_end_ = kernel().now() + cost - 1;
  next_expected_tick_ = batch_end_ + 1;
  ++batched_chunks_;
  kernel().stats().add(h_batched_chunks_);
  wake_at(batch_end_);
  return true;
}

void InterconnectModel::finish_batch() {
  batch_active_ = false;
  next_expected_tick_ = kernel().now() + 1;
  BusMasterPort& m = *granted_;
  m.stats_.grant_cycles += cfg_.address_phase_cycles;
  m.stats_.wait_cycles += batch_waits_;
  m.stats_.beats += batch_beats_;
  if (batch_beats_ > 0) kernel().stats().add(m.h_beats_, batch_beats_);
  if (m.write_ && m.source_ == nullptr) m.wdata_index_ += batch_beats_;
  m.addr_ += 4u * batch_beats_;
  m.beats_ -= batch_beats_;
  grant_beats_left_ -= batch_beats_;
  if (batch_error_ != nullptr) {
    // Replay the per-beat loop's catch: deactivate, release, wake, and
    // re-raise on the very cycle the per-beat slave access would throw.
    std::exception_ptr err = batch_error_;
    batch_error_ = nullptr;
    m.active_ = false;
    granted_ = nullptr;
    wait_left_ = 0;
    beat_in_flight_ = false;
    open_.erase(&m);
    if (m.completion_waiter_ != nullptr) m.completion_waiter_->wake();
    std::rethrow_exception(err);
  }
  if (m.beats_ == 0) {
    m.active_ = false;
    if (m.completion_waiter_ != nullptr) m.completion_waiter_->wake();
    ++m.stats_.transactions;
    kernel().stats().add(m.h_transactions_);
    granted_ = nullptr;
  } else if (grant_beats_left_ == 0) {
    // Burst split: release and re-arbitrate next cycle, as per-beat does.
    granted_ = nullptr;
  }
}

void InterconnectModel::save_state(snap::StateWriter& w) const {
  if (batch_error_ != nullptr) {
    throw snap::SnapshotError(
        name() + ": cannot snapshot while a batched slave error is "
                 "pending delivery (advance past the window first)");
  }
  // Grant window. The granted master is recorded by port index; -1
  // (encoded as ~0) means the bus is idle.
  u32 granted_idx = ~u32{0};
  for (std::size_t i = 0; i < masters_.size(); ++i) {
    if (masters_[i].get() == granted_) granted_idx = static_cast<u32>(i);
  }
  w.write_u32("granted", granted_idx);
  w.write_u32("grant_addr_cycles_left", grant_addr_cycles_left_);
  w.write_u32("grant_beats_left", grant_beats_left_);
  w.write_u32("wait_left", wait_left_);
  w.write_bool("beat_in_flight", beat_in_flight_);
  w.write_u32("inflight_data", inflight_data_);
  w.write_u64("txn_start", txn_start_);
  w.write_u64("rr_next", rr_next_);
  w.write_u64("busy_cycles", busy_cycles_);
  w.write_u64("idle_cycles", idle_cycles_);
  w.write_u64("next_expected_tick", next_expected_tick_);

  // Open batched-burst window (slave accesses already ran; the deferred
  // accounting re-applies on the tick at batch_end).
  w.write_bool("batch_active", batch_active_);
  w.write_u64("batch_end", batch_end_);
  w.write_u32("batch_beats", batch_beats_);
  w.write_u64("batch_waits", batch_waits_);
  w.write_u64("batched_chunks", batched_chunks_);

  w.write_u32("master_count", static_cast<u32>(masters_.size()));
  for (const auto& mp : masters_) {
    const BusMasterPort& m = *mp;
    w.write_string("port", m.name_);
    w.write_bool("active", m.active_);
    w.write_bool("faulted", m.faulted_);
    w.write_u32("addr", m.addr_);
    w.write_bool("write", m.write_);
    w.write_u32("beats", m.beats_);
    w.write_words32("wdata", m.wdata_);
    w.write_u64("wdata_index", m.wdata_index_);
    w.write_words32("rdata", m.rdata_);
    // Streamed endpoints are wiring: record attachment only; the issuing
    // controller reattaches via restore_stream().
    w.write_bool("has_sink", m.sink_ != nullptr);
    w.write_bool("has_source", m.source_ != nullptr);
    w.write_u64("txns", m.stats_.transactions);
    w.write_u64("beats_total", m.stats_.beats);
    w.write_u64("wait_cycles", m.stats_.wait_cycles);
    w.write_u64("stall_cycles", m.stats_.stall_cycles);
    w.write_u64("grant_cycles", m.stats_.grant_cycles);
  }
}

void InterconnectModel::restore_state(snap::StateReader& r) {
  const u32 granted_idx = r.read_u32("granted");
  grant_addr_cycles_left_ = r.read_u32("grant_addr_cycles_left");
  grant_beats_left_ = r.read_u32("grant_beats_left");
  wait_left_ = r.read_u32("wait_left");
  beat_in_flight_ = r.read_bool("beat_in_flight");
  inflight_data_ = r.read_u32("inflight_data");
  txn_start_ = r.read_u64("txn_start");
  rr_next_ = static_cast<std::size_t>(r.read_u64("rr_next"));
  busy_cycles_ = r.read_u64("busy_cycles");
  idle_cycles_ = r.read_u64("idle_cycles");
  next_expected_tick_ = r.read_u64("next_expected_tick");

  batch_active_ = r.read_bool("batch_active");
  batch_end_ = r.read_u64("batch_end");
  batch_beats_ = r.read_u32("batch_beats");
  batch_waits_ = r.read_u64("batch_waits");
  batched_chunks_ = r.read_u64("batched_chunks");
  batch_error_ = nullptr;

  const u32 count = r.read_u32("master_count");
  if (count != masters_.size()) {
    throw snap::SnapshotError(name() + ": snapshot has " +
                              std::to_string(count) + " master ports, bus has " +
                              std::to_string(masters_.size()));
  }
  for (auto& mp : masters_) {
    BusMasterPort& m = *mp;
    const std::string port = r.read_string("port");
    if (port != m.name_) {
      throw snap::SnapshotError(name() + ": snapshot port '" + port +
                                "' does not match '" + m.name_ + "'");
    }
    m.active_ = r.read_bool("active");
    m.faulted_ = r.read_bool("faulted");
    m.addr_ = r.read_u32("addr");
    m.write_ = r.read_bool("write");
    m.beats_ = r.read_u32("beats");
    m.wdata_ = r.read_words32("wdata");
    m.wdata_index_ = static_cast<std::size_t>(r.read_u64("wdata_index"));
    m.rdata_ = r.read_words32("rdata");
    // Cleared here; the issuing controller's restore_state runs later in
    // the component walk and reattaches when its transfer is streamed.
    const bool had_sink = r.read_bool("has_sink");
    const bool had_source = r.read_bool("has_source");
    (void)had_sink;
    (void)had_source;
    m.sink_ = nullptr;
    m.source_ = nullptr;
    m.stats_.transactions = r.read_u64("txns");
    m.stats_.beats = r.read_u64("beats_total");
    m.stats_.wait_cycles = r.read_u64("wait_cycles");
    m.stats_.stall_cycles = r.read_u64("stall_cycles");
    m.stats_.grant_cycles = r.read_u64("grant_cycles");
  }
  if (granted_idx == ~u32{0}) {
    granted_ = nullptr;
  } else if (granted_idx < masters_.size()) {
    granted_ = masters_[granted_idx].get();
  } else {
    throw snap::SnapshotError(name() + ": granted master index " +
                              std::to_string(granted_idx) + " out of range");
  }
  // Host telemetry (log_, open_, tracer, snoopers) is not snapshot
  // state: a restored bus starts with an empty transaction log.
  open_.clear();
  // Re-arm the batch window's end-of-window tick; restore_from()
  // replaces the wake heap afterwards, but a direct restore_state()
  // round-trip in tests must stay self-consistent too.
  if (batch_active_) wake_at(batch_end_);
}

void InterconnectModel::error_response(BusMasterPort& m) {
  m.active_ = false;
  m.faulted_ = true;
  m.sink_ = nullptr;
  m.source_ = nullptr;
  if (logging_ || tracer_ != nullptr) {
    auto it = open_.find(&m);
    if (it != open_.end()) {
      it->second.end = kernel().now();
      if (tracer_ != nullptr) {
        const TxnRecord& r = it->second;
        tracer_->complete(
            track_, "err", r.start, r.end,
            {obs::arg("master", r.master), obs::arg("addr", u64{r.addr}),
             obs::arg("beats", u64{r.beats})});
      }
      if (logging_) log_.push_back(it->second);
      open_.erase(it);
    }
  }
  granted_ = nullptr;
  wait_left_ = 0;
  beat_in_flight_ = false;
  if (m.completion_waiter_ != nullptr) m.completion_waiter_->wake();
}

void InterconnectModel::abort_master(BusMasterPort& m) {
  if (!m.active_) return;
  if (granted_ == &m) {
    if (batch_active_) {
      // An abort can only be issued by host code or another component,
      // neither of which can observe a batch window mid-flight (the
      // aborting master's controller sleeps through it, and host resets
      // arrive over this very bus). Defensively settle the window's
      // already-executed beats before dropping the grant, so the
      // per-master stats never lose accesses the slaves did see.
      batch_active_ = false;
      m.stats_.grant_cycles += cfg_.address_phase_cycles;
      m.stats_.wait_cycles += batch_waits_;
      m.stats_.beats += batch_beats_;
      if (batch_beats_ > 0) kernel().stats().add(m.h_beats_, batch_beats_);
      if (m.write_ && m.source_ == nullptr) m.wdata_index_ += batch_beats_;
      m.addr_ += 4u * batch_beats_;
      m.beats_ -= batch_beats_;
      batch_error_ = nullptr;
    }
    granted_ = nullptr;
    grant_addr_cycles_left_ = 0;
    wait_left_ = 0;
    beat_in_flight_ = false;
  }
  m.active_ = false;
  m.faulted_ = false;
  m.sink_ = nullptr;
  m.source_ = nullptr;
  open_.erase(&m);
  if (m.completion_waiter_ != nullptr) m.completion_waiter_->wake();
}

void BusMasterPort::abort() {
  if (owner_ != nullptr) owner_->abort_master(*this);
}

void InterconnectModel::complete_beat(u32 data) {
  BusMasterPort& m = *granted_;
  if (m.write_) {
    for (const auto& snoop : snoopers_) snoop(m.addr_, m);
  }
  if (!m.write_) {
    if (m.sink_ != nullptr) {
      m.sink_->put_beat(data);
    } else {
      m.rdata_.push_back(data);
    }
  } else if (m.source_ == nullptr) {
    ++m.wdata_index_;
  }
  ++m.stats_.beats;
  kernel().stats().add(m.h_beats_);
  m.addr_ += 4;
  --m.beats_;
  --grant_beats_left_;
  wait_left_ = 0;
  beat_in_flight_ = false;

  if (m.beats_ == 0) {
    m.active_ = false;
    if (m.completion_waiter_ != nullptr) m.completion_waiter_->wake();
    ++m.stats_.transactions;
    kernel().stats().add(m.h_transactions_);
    if (logging_ || tracer_ != nullptr) {
      auto it = open_.find(&m);
      if (it != open_.end()) {
        it->second.end = kernel().now();
        if (tracer_ != nullptr) {
          const TxnRecord& r = it->second;
          tracer_->complete(
              track_, r.write ? "wr" : "rd", r.start, r.end,
              {obs::arg("master", r.master), obs::arg("addr", u64{r.addr}),
               obs::arg("beats", u64{r.beats}), obs::arg("waits", u64{r.waits}),
               obs::arg("stalls", u64{r.stalls})});
        }
        if (logging_) log_.push_back(it->second);
        open_.erase(it);
      }
    }
    granted_ = nullptr;
  } else if (grant_beats_left_ == 0) {
    // Burst split / per-beat protocols: release and re-arbitrate.
    granted_ = nullptr;
  }
}

}  // namespace ouessant::bus
