// Protocol monitor: validates a recorded transaction log against the
// single-layer bus invariants. Used by tests as an always-on assertion
// layer (the simulation analogue of an AHB protocol checker IP).
#pragma once

#include <string>
#include <vector>

#include "bus/interconnect.hpp"

namespace ouessant::bus {

struct MonitorReport {
  bool ok = true;
  std::vector<std::string> violations;
};

/// Check @p log for protocol violations:
///  * word-aligned addresses and non-zero burst lengths,
///  * each transaction's end cycle at/after its start cycle,
///  * minimum duration (address phase + one cycle per beat),
///  * no two transactions *complete* on the same cycle (one beat/cycle).
MonitorReport check_log(const std::vector<TxnRecord>& log,
                        const BusTimingConfig& timing);

/// Render a transaction log as a human-readable listing.
std::string render_log(const std::vector<TxnRecord>& log);

}  // namespace ouessant::bus
