// Shared interconnect engine. Concrete protocols (AHB, AXI-Lite) are thin
// configurations of this model: they differ in how many data beats a grant
// may carry, and in the per-grant overhead (arbitration + address phase).
//
// Timing model, per clock cycle the bus does exactly one of:
//   * arbitration/address phase (start of a grant),
//   * one data beat (slave access),
//   * one slave wait state,
//   * one master stall (streamed source empty / sink full).
// This matches a single-layer AHB-class bus transferring at most one word
// per cycle, which is what the paper's Leon3/AMBA2 platform provides.
#pragma once

#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bus/types.hpp"
#include "fault/hooks.hpp"
#include "obs/tracer.hpp"
#include "sim/kernel.hpp"

namespace ouessant::bus {

/// Arbitration policy between requesting masters.
enum class Arbitration {
  kFixedPriority,  ///< lower priority value wins (Leon3 AHB style)
  kRoundRobin,     ///< rotating priority
};

struct BusTimingConfig {
  u32 address_phase_cycles = 1;  ///< overhead per grant
  u32 max_beats_per_grant = 256; ///< burst split threshold (1 => no bursts)
  Arbitration arbitration = Arbitration::kFixedPriority;
};

/// One entry of the transaction log (used by tests and the monitor).
struct TxnRecord {
  Cycle start = 0;
  Cycle end = 0;
  std::string master;
  Addr addr = 0;
  bool write = false;
  u32 beats = 0;
  u32 waits = 0;   ///< slave wait states inside this transaction
  u32 stalls = 0;  ///< master stalls inside this transaction
};

class InterconnectModel : public sim::Component {
 public:
  InterconnectModel(sim::Kernel& kernel, std::string name,
                    BusTimingConfig cfg);

  /// Create a master port. @p priority: smaller wins under fixed priority.
  BusMasterPort& connect_master(const std::string& name, int priority = 0);

  /// Map @p slave at [base, base+size). Ranges must not overlap.
  void connect_slave(BusSlave& slave, Addr base, u32 size);

  /// Address decode (throws SimError on a hole — models an AHB ERROR).
  [[nodiscard]] BusSlave& decode(Addr addr) const;

  /// True if some slave is mapped at @p addr.
  [[nodiscard]] bool is_mapped(Addr addr) const;

  // sim::Component
  void tick_compute() override;
  /// Serializes the grant window, any open batched-burst window, and
  /// every master port's transaction state (streamed endpoints as
  /// attachment flags — see BusMasterPort::restore_stream). A pending
  /// batch_error_ (a slave exception awaiting its per-beat cycle) is not
  /// serializable and makes save_state throw.
  void save_state(snap::StateWriter& w) const override;
  void restore_state(snap::StateReader& r) override;
  /// Quiescent whenever no master holds or requests the bus: the only
  /// effect of a tick in that state is counting an idle cycle, which the
  /// sleep-credit below reproduces. BusMasterPort::begin() wakes us.
  /// Also quiescent while sleeping out a batched burst window (the
  /// wake_at() arming the window's final cycle is already in the heap).
  [[nodiscard]] bool is_quiescent() const override;

  // Introspection.
  [[nodiscard]] const BusTimingConfig& timing() const { return cfg_; }
  [[nodiscard]] u64 busy_cycles() const { return busy_cycles_; }
  /// Idle cycle count, folding in cycles spent clock-gated (every gated
  /// cycle is by construction an idle one).
  [[nodiscard]] u64 idle_cycles() const {
    return idle_cycles_ + pending_idle_credit();
  }
  /// True while some master holds the bus (instantaneous, for probes).
  [[nodiscard]] bool granted_now() const { return granted_ != nullptr; }

  /// Write snooping: @p fn is invoked for every completed write beat with
  /// the beat address and the mastering port — the hook cache-coherency
  /// logic uses to observe DMA traffic (§IV: "current systems implement
  /// cache snooping").
  using WriteSnooper = std::function<void(Addr, const BusMasterPort&)>;
  void add_write_snooper(WriteSnooper fn) {
    snoopers_.push_back(std::move(fn));
  }

  /// Enable/disable transaction logging (off by default).
  void set_logging(bool on) { logging_ = on; }
  [[nodiscard]] const std::vector<TxnRecord>& log() const { return log_; }
  void clear_log() { log_.clear(); }

  /// Attach (or detach, nullptr) an event tracer. Every completed
  /// transaction is then emitted as one span ("wr"/"rd") on a track
  /// named "bus.<name>", annotated with master, address, beat count and
  /// the wait-state/stall cycles it absorbed.
  void set_tracer(obs::EventTracer* tracer);

  /// Attach (or detach, nullptr) a fault hook, consulted once per data
  /// beat. A firing hook turns the beat into a slave ERROR response:
  /// the transaction terminates, the master port latches faulted(), and
  /// the error cycle is accounted as a wait state (so the per-master
  /// one-action-per-busy-cycle identity survives faulty runs). One
  /// branch per beat when unarmed (passivity discipline).
  void set_fault_hook(fault::BusFaultHook* hook) { fault_hook_ = hook; }

  /// Abort @p m's in-flight transaction (soft reset): the port is
  /// deactivated without an error latch and the grant is released if
  /// @p m holds it. No-op when the port is idle.
  void abort_master(BusMasterPort& m);

  /// Per-category cycle totals summed over every master port. With the
  /// model's one-action-per-busy-cycle invariant,
  ///   beats + grant_cycles + wait_cycles + stall_cycles == busy_cycles()
  /// — the identity the CycleLedger builds Table I's transfer column on.
  [[nodiscard]] MasterStats master_totals() const;

  /// Batched burst windows on/off (default: on). When on, a grant whose
  /// chunk has no observer armed — no transaction log, tracer, fault
  /// hook, write snooper, or kernel sampler — and whose beats all decode
  /// into one slave mapping (with any streamed endpoint promising the
  /// whole chunk stall-free, see BeatSource::bulk_ready) is completed as
  /// ONE event: the slave accesses run eagerly at the grant tick, the
  /// bus sleeps to the cycle the final per-beat tick would have landed
  /// on, and every counter, data word, and completion wake is
  /// bit-identical to per-beat ticking. Off (or any armed observer)
  /// keeps the seed's per-beat loop — the differential-test reference.
  void set_batching(bool on) { batching_enabled_ = on; }
  [[nodiscard]] bool batching() const { return batching_enabled_; }

  /// Grant chunks completed through the batched fast path (diagnostics;
  /// tests assert 0 here to prove an armed observer forced per-beat
  /// ticking, and > 0 to prove batching engaged).
  [[nodiscard]] u64 batched_chunks() const { return batched_chunks_; }

 private:
  struct Mapping {
    Addr base;
    u32 size;
    BusSlave* slave;
  };

  BusMasterPort* select_master();
  bool try_batch_chunk();
  void finish_batch();
  void complete_beat(u32 data);
  void error_response(BusMasterPort& m);
  void note_txn_wait(BusMasterPort& m);
  void note_txn_stall(BusMasterPort& m);
  [[nodiscard]] u64 pending_idle_credit() const {
    const Cycle now = kernel().now();
    return now > next_expected_tick_ ? now - next_expected_tick_ : 0;
  }

  BusTimingConfig cfg_;
  std::vector<std::unique_ptr<BusMasterPort>> masters_;
  std::vector<Mapping> map_;

  // Grant state.
  BusMasterPort* granted_ = nullptr;
  u32 grant_addr_cycles_left_ = 0;
  u32 grant_beats_left_ = 0;   // beats allowed in this grant
  u32 wait_left_ = 0;
  bool beat_in_flight_ = false;
  u32 inflight_data_ = 0;      // read data waiting out wait states
  Cycle txn_start_ = 0;
  std::size_t rr_next_ = 0;    // round-robin pointer

  std::vector<WriteSnooper> snoopers_;
  fault::BusFaultHook* fault_hook_ = nullptr;
  obs::EventTracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
  bool logging_ = false;
  std::map<BusMasterPort*, TxnRecord> open_;  // in-flight logged txns
  std::vector<TxnRecord> log_;
  u64 busy_cycles_ = 0;
  u64 idle_cycles_ = 0;
  Cycle next_expected_tick_ = 0;  // sleep-credit anchor for idle_cycles_

  // Batched burst window (see set_batching). While batch_active_, the
  // chunk's slave accesses have already run; the grant is held and the
  // deferred per-master accounting is applied by finish_batch() on the
  // tick at batch_end_ — the same cycle the per-beat loop would have
  // completed the final beat on.
  bool batching_enabled_ = true;
  bool batch_active_ = false;
  Cycle batch_end_ = 0;
  u32 batch_beats_ = 0;   // beats completed eagerly in this window
  u64 batch_waits_ = 0;   // wait states absorbed in this window
  std::exception_ptr batch_error_;  // slave throw, re-raised at its cycle
  u64 batched_chunks_ = 0;
  // Interned "<name>.batched_chunks" — the diagnostic above, published
  // to Stats so sweeps and traces report it without poking the object.
  sim::Stats::Handle h_batched_chunks_;
};

/// AMBA2 AHB-class bus: bursts up to 256 beats per grant, one address
/// phase per grant. This is the bus of the paper's Leon3 platform.
class AhbBus : public InterconnectModel {
 public:
  AhbBus(sim::Kernel& kernel, std::string name,
         Arbitration arb = Arbitration::kFixedPriority)
      : InterconnectModel(kernel, std::move(name),
                          BusTimingConfig{.address_phase_cycles = 1,
                                          .max_beats_per_grant = 256,
                                          .arbitration = arb}) {}
};

/// AXI4-Lite-class bus: no bursts — every word pays its own address
/// handshake. This is the paper's "future work" Zynq integration target,
/// included to demonstrate (and measure) the portability of the OCP's
/// bus-independent interface.
class AxiLiteBus : public InterconnectModel {
 public:
  AxiLiteBus(sim::Kernel& kernel, std::string name,
             Arbitration arb = Arbitration::kRoundRobin)
      : InterconnectModel(kernel, std::move(name),
                          BusTimingConfig{.address_phase_cycles = 1,
                                          .max_beats_per_grant = 1,
                                          .arbitration = arb}) {}
};

/// Full AXI4-class bus: bursts up to 256 beats, but the AR/AW handshake
/// costs two cycles per grant (valid/ready plus the slave's address
/// acceptance) — the memory-mapped fabric of a Zynq PS/PL boundary.
class Axi4Bus : public InterconnectModel {
 public:
  Axi4Bus(sim::Kernel& kernel, std::string name,
          Arbitration arb = Arbitration::kRoundRobin)
      : InterconnectModel(kernel, std::move(name),
                          BusTimingConfig{.address_phase_cycles = 2,
                                          .max_beats_per_grant = 256,
                                          .arbitration = arb}) {}
};

}  // namespace ouessant::bus
