#include "drv/session.hpp"

namespace ouessant::drv {

OcpSession::OcpSession(cpu::Gpp& gpp, mem::Sram& mem, core::Ocp& ocp,
                       SessionLayout layout)
    : gpp_(gpp),
      mem_(mem),
      ocp_(ocp),
      layout_(layout),
      drv_(gpp, ocp.config().reg_base, ocp.irq(), ocp.name()) {
  if (layout_.in_words == 0 || layout_.out_words == 0) {
    throw ConfigError("OcpSession: zero-sized layout");
  }
}

void OcpSession::set_tracer(obs::EventTracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) track_ = tracer_->track("drv." + ocp_.name());
}

void OcpSession::install(const core::Program& prog, bool timed_program) {
  const Cycle t0 = gpp_.now();
  const auto check = core::verify(
      prog, static_cast<u32>(ocp_.input_fifos().size()),
      static_cast<u32>(ocp_.output_fifos().size()));
  if (!check.ok) {
    throw ConfigError("OcpSession: program fails verification:\n" +
                      check.to_string());
  }
  if (timed_program) {
    drv_.install_program(layout_.prog_base, prog);
  } else {
    drv_.install_program_backdoor(mem_, layout_.prog_base, prog);
  }
  drv_.set_bank(1, layout_.in_base);
  drv_.set_bank(2, layout_.out_base);
  if (tracer_ != nullptr) {
    tracer_->complete(track_, "install", t0, gpp_.now(),
                      {obs::arg("words", u64{prog.size()}),
                       obs::arg("timed", u64{timed_program ? 1 : 0})});
  }
}

void OcpSession::put_input(const std::vector<u32>& words) {
  if (words.size() != layout_.in_words) {
    throw ConfigError("OcpSession::put_input: size mismatch");
  }
  mem_.load(layout_.in_base, words);
}

std::vector<u32> OcpSession::get_output() const {
  return mem_.dump(layout_.out_base, layout_.out_words);
}

u64 OcpSession::run_poll(u64 poll_gap, u64 timeout) {
  const Cycle t0 = gpp_.now();
  drv_.start();
  const u32 polls = drv_.wait_done_poll(poll_gap, timeout);
  if (tracer_ != nullptr) {
    tracer_->complete(track_, "run_poll", t0, gpp_.now(),
                      {obs::arg("polls", u64{polls}),
                       obs::arg("poll_gap", poll_gap)});
  }
  return gpp_.now() - t0;
}

u64 OcpSession::run_irq(u64 timeout) {
  const Cycle t0 = gpp_.now();
  drv_.enable_irq(true);
  drv_.start();
  drv_.wait_done_irq(timeout);
  if (tracer_ != nullptr) {
    tracer_->complete(track_, "run_irq", t0, gpp_.now());
  }
  return gpp_.now() - t0;
}

void OcpSession::start_async() {
  drv_.start();
  if (tracer_ != nullptr) tracer_->instant(track_, "start_async");
}

fault::FaultReport OcpSession::make_fault_report(WaitResult wr,
                                                u64 timeout) const {
  fault::FaultReport rep;
  rep.ocp = ocp_.name();
  rep.attempts = 1;
  switch (wr) {
    case WaitResult::kErr: {
      rep.cls = fault::FaultClass::kErrBit;
      rep.info = ocp_.controller().last_fault();
      if (rep.info.empty()) {
        rep.info = FaultInfo{gpp_.now(), 0, "ERR set"};
      }
      break;
    }
    case WaitResult::kTimeout:
      rep.cls = fault::FaultClass::kTimeout;
      rep.info = FaultInfo{gpp_.now(), ocp_.controller().pc(),
                           "no completion within " + std::to_string(timeout) +
                               " cycles"};
      break;
    case WaitResult::kDone:
      break;  // not a fault; caller never asks
  }
  return rep;
}

RunOutcome OcpSession::try_run_poll(u64 poll_gap, u64 timeout) {
  const Cycle t0 = gpp_.now();
  drv_.start();
  u32 polls = 0;
  const WaitResult wr = drv_.wait_done_poll_status(poll_gap, timeout, &polls);
  RunOutcome out;
  out.cycles = gpp_.now() - t0;
  if (wr == WaitResult::kDone) {
    if (tracer_ != nullptr) {
      tracer_->complete(track_, "run_poll", t0, gpp_.now(),
                        {obs::arg("polls", u64{polls}),
                         obs::arg("poll_gap", poll_gap)});
    }
    return out;
  }
  out.ok = false;
  out.report = make_fault_report(wr, timeout);
  if (tracer_ != nullptr) {
    tracer_->complete(track_, "run_poll_fault", t0, gpp_.now(),
                      {obs::arg("class", fault::class_name(out.report.cls))});
  }
  return out;
}

RunOutcome OcpSession::try_run_irq(u64 timeout) {
  const Cycle t0 = gpp_.now();
  drv_.enable_irq(true);
  drv_.start();
  WaitResult wr = drv_.wait_done_irq_status(timeout);
  RunOutcome out;
  bool recovered = false;
  if (wr == WaitResult::kTimeout) {
    // The edge may have been lost (irq_drop fault) with the work actually
    // finished — poll CTRL once before declaring a timeout.
    const u32 ctrl = drv_.read_ctrl();
    if ((ctrl & core::kCtrlDone) != 0) {
      drv_.clear_done();
      wr = WaitResult::kDone;
      recovered = true;
    } else if ((ctrl & core::kCtrlErr) != 0) {
      wr = WaitResult::kErr;
    }
  }
  out.cycles = gpp_.now() - t0;
  if (wr == WaitResult::kDone) {
    out.report.recovered_irq = recovered;
    if (tracer_ != nullptr) {
      tracer_->complete(track_, "run_irq", t0, gpp_.now(),
                        {obs::arg("recovered", u64{recovered ? 1 : 0})});
    }
    return out;
  }
  out.ok = false;
  out.report = make_fault_report(wr, timeout);
  if (tracer_ != nullptr) {
    tracer_->complete(track_, "run_irq_fault", t0, gpp_.now(),
                      {obs::arg("class", fault::class_name(out.report.cls))});
  }
  return out;
}

void OcpSession::recover() {
  if ((drv_.read_ctrl() & core::kCtrlErr) != 0) drv_.clear_error();
  drv_.soft_reset();
  if (tracer_ != nullptr) tracer_->instant(track_, "recover");
}

}  // namespace ouessant::drv
