// Baremetal OCP driver (paper §IV): the register-level programming
// sequence a baremetal application (or the kernel half of the Linux
// driver) performs. Every access here is a real, timed bus transaction
// issued by the Gpp.
#pragma once

#include <string>

#include "cpu/gpp.hpp"
#include "cpu/irq.hpp"
#include "mem/sram.hpp"
#include "ouessant/program.hpp"
#include "ouessant/regs.hpp"
#include "snap/state.hpp"

namespace ouessant::drv {

/// Default completion deadline for the wait helpers, in cycles. Callers
/// with real-time budgets pass their own; the value always travels into
/// the timeout SimError so logs show which deadline actually expired.
inline constexpr u64 kDefaultDriverTimeout = 10'000'000;

/// How a status-returning wait ended. The throwing waits map kErr and
/// kTimeout onto SimError; fault-aware callers (drv::OcpSession,
/// svc::Dispatcher) branch on the value instead and recover.
enum class WaitResult : u8 {
  kDone = 0,  ///< D observed set (and acknowledged)
  kErr,       ///< ERR observed set (left set — clear_error() to W1C it)
  kTimeout,   ///< deadline expired with neither D nor ERR
};

[[nodiscard]] const char* wait_result_name(WaitResult r);

class OcpDriver {
 public:
  /// @p reg_base: where the OCP's 10 registers are mapped. @p name tags
  /// every SimError this driver throws (one CPU typically runs several
  /// OCP drivers — "which coprocessor timed out" must not be a guess).
  OcpDriver(cpu::Gpp& gpp, Addr reg_base, cpu::IrqLine& irq,
            std::string name = "ocp");

  // -- configuration -----------------------------------------------------
  /// Program bank register @p n with physical base @p phys.
  void set_bank(u32 n, Addr phys);

  /// Write @p prog into memory at @p prog_base (word by word over the
  /// bus), point bank 0 at it and set the program-size register.
  void install_program(Addr prog_base, const core::Program& prog);

  /// Same, but through the memory backdoor (untimed) — models a program
  /// image already resident, e.g. loaded at boot.
  void install_program_backdoor(mem::Sram& mem, Addr prog_base,
                                const core::Program& prog);

  void enable_irq(bool on);

  /// Set or clear the CHAIN control bit (docs/chaining.md). Like IE it
  /// is level-sensitive and re-derived on every control write, so the
  /// driver shadows it and ORs it into each subsequent CTRL access.
  void enable_chain(bool on);
  [[nodiscard]] bool chain_shadow() const { return chain_; }

  // -- execution -----------------------------------------------------------
  /// Set the S bit (preserving IE).
  void start();

  [[nodiscard]] u32 read_ctrl();
  [[nodiscard]] bool done_bit_set();

  /// Acknowledge completion: clear D (and the interrupt line with it).
  void clear_done();

  /// Acknowledge a fault: clear ERR (W1C). The faulting program's state
  /// is NOT undone — pair with soft_reset() before retrying.
  void clear_error();

  /// Busy-wait on the D bit with MMIO reads every @p poll_gap cycles.
  /// Throws SimError if ERR is observed. Returns polls performed.
  u32 wait_done_poll(u64 poll_gap = 16, u64 timeout = kDefaultDriverTimeout);

  /// Sleep until the OCP interrupt fires, then acknowledge.
  void wait_done_irq(u64 timeout = kDefaultDriverTimeout);

  /// Non-throwing wait_done_poll: identical bus access sequence, but ERR
  /// and deadline expiry come back as a WaitResult instead of a SimError.
  /// On kDone the D bit has been acknowledged; on kErr the ERR bit is
  /// left set for the caller to inspect and clear.
  WaitResult wait_done_poll_status(u64 poll_gap = 16,
                                   u64 timeout = kDefaultDriverTimeout,
                                   u32* polls_out = nullptr);

  /// Non-throwing wait_done_irq — same access sequence; a missed or
  /// suppressed interrupt surfaces as kTimeout (the caller can still
  /// read_ctrl() to discover a completion whose edge was lost).
  WaitResult wait_done_irq_status(u64 timeout = kDefaultDriverTimeout);

  /// Pulse RST and poll until every status bit (BUSY/DONE/ERR/PROG) reads
  /// zero. The reset itself takes effect on the controller's next tick;
  /// @p settle bounds the wait (SimError past it — a stuck reset is a
  /// model bug, not a recoverable fault).
  void soft_reset(u64 settle = 10'000);

  [[nodiscard]] cpu::Gpp& gpp() { return gpp_; }
  [[nodiscard]] Addr reg_base() const { return base_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // -- snapshot hooks ------------------------------------------------------
  // Host-stack object (not a sim::Component): the session/service layer
  // embeds these. The driver's only mutable state is its IE/CHAIN shadow.
  void save_state(snap::StateWriter& w) const;
  void restore_state(snap::StateReader& r);

 private:
  cpu::Gpp& gpp_;
  Addr base_;
  cpu::IrqLine& irq_;
  std::string name_;
  /// Every CTRL write is composed as `bits | shadow()` so the
  /// level-sensitive IE and CHAIN bits survive W1C acknowledgements.
  [[nodiscard]] u32 shadow() const;
  bool ie_ = false;
  bool chain_ = false;
};

}  // namespace ouessant::drv
