// ChainSession: one configured two-stage accelerator chain — a producer
// ("head") OCP whose output FIFO feeds a consumer ("tail") OCP's input
// FIFO through a fifo::ChainLink, plus the store-and-forward ablation
// that routes the intermediate blocks through an SRAM bounce buffer
// instead (docs/chaining.md).
//
// The session composes two OcpSessions and owns the launch protocol:
//
//  - kLinked: install the chain head/tail microcode (head never drains
//    its output, tail never fetches its input — the link is the only
//    mover in between), arm the head's CHAIN control bit, and start the
//    TAIL first: its exec blocks on the empty input FIFO until the link
//    delivers, so starting order cannot lose data. One interrupt (the
//    tail's) retires the whole chain.
//  - kStoreForward: the measured baseline. Both OCPs run the ordinary
//    batch program; the head writes every intermediate block to the
//    bounce buffer over the system bus and the tail reads it back —
//    same payloads, same RACs, twice the SRAM traffic and two
//    interrupts per batch.
//
// Every control access is a timed bus transaction through the two
// OcpDrivers, so the chained-vs-store-and-forward comparison includes
// the software cost of driving one completion versus two.
#pragma once

#include "drv/session.hpp"
#include "fifo/chain_link.hpp"

namespace ouessant::drv {

/// Intermediate-block routing. kStoreForward is the one-flag ablation
/// (same spirit as dpr::IcapMode::kFree): flip it and nothing else to
/// measure what the p2p link buys.
enum class ChainMode : u8 {
  kLinked = 0,       ///< head -> ChainLink -> tail (no SRAM in between)
  kStoreForward = 1  ///< head -> SRAM bounce buffer -> tail
};

[[nodiscard]] const char* chain_mode_name(ChainMode mode);

/// SRAM carve-out for one chain. The bounce buffer is only written in
/// kStoreForward mode but is reserved in both so the two modes run over
/// an identical memory map.
struct ChainLayout {
  Addr head_prog_base = 0;  ///< head microcode image (head bank 0)
  Addr tail_prog_base = 0;  ///< tail microcode image (tail bank 0)
  Addr in_base = 0;         ///< chain input blocks (head bank 1)
  Addr bounce_base = 0;     ///< store-and-forward intermediate blocks
  Addr out_base = 0;        ///< chain output blocks (tail bank 2)
  u32 block_words = 0;      ///< words per block, both stages (<= one burst)
  u32 max_batch = 1;        ///< blocks the windows are sized for
};

class ChainSession {
 public:
  /// Binds @p link between @p head's output FIFO 0 and @p tail's input
  /// FIFO 0 and wires @p head's CHAIN control bit to the link's enable —
  /// after this, `driver().enable_chain(true)` on the head is what turns
  /// the conduit on. Each OCP must expose exactly one FIFO per
  /// direction (the BlockRac shape).
  ChainSession(cpu::Gpp& gpp, mem::Sram& mem, core::Ocp& head,
               core::Ocp& tail, fifo::ChainLink& link, ChainLayout layout,
               ChainMode mode = ChainMode::kLinked);

  /// Install the batch-@p batch microcode pair for the session's mode.
  /// kLinked also arms the head's CHAIN bit on the first install (one
  /// timed CSR write for the session's lifetime).
  void install(u32 batch, bool timed_program = true);

  // Host-side staging (backdoor; mirrors OcpSession::put_input).
  void put_input(const std::vector<u32>& words);
  [[nodiscard]] std::vector<u32> get_output(u32 words) const;

  /// Blocking end-to-end run of the installed batch; returns elapsed
  /// cycles. kLinked sleeps on the tail's interrupt; kStoreForward runs
  /// the two stages back to back (two interrupts).
  u64 run_irq(u64 timeout = kDefaultDriverTimeout);

  // -- staged execution (the Dispatcher's path) --------------------------
  /// Launch without waiting. kLinked starts tail then head and the next
  /// event is the tail's completion; kStoreForward starts the head only
  /// and the next event is the head's completion (-> advance_to_tail).
  void start_async();

  /// kStoreForward head-stage ISR tail: acknowledge the head's D and
  /// launch the tail stage over the bounce buffer.
  void advance_to_tail();

  /// After the caller acknowledged the tail's completion: clear the
  /// head's latched D (kLinked runs the head with IE off, so its D
  /// sits until the chain retires) and return to idle.
  void retire_ack();

  /// True while the store-and-forward head stage is in flight (the next
  /// interrupt belongs to the head, not the tail).
  [[nodiscard]] bool awaiting_tail() const { return stage_ == Stage::kHead; }

  /// Fault recovery: both OCPs through OcpSession::recover (ERR ack +
  /// RST pulse) plus a link flush for the word that may be in flight.
  /// The head's CHAIN bit survives (driver shadow).
  void recover();

  [[nodiscard]] ChainMode mode() const { return mode_; }
  [[nodiscard]] const ChainLayout& layout() const { return layout_; }
  [[nodiscard]] OcpSession& head() { return head_; }
  [[nodiscard]] OcpSession& tail() { return tail_; }
  [[nodiscard]] fifo::ChainLink& link() { return link_; }

  void set_tracer(obs::EventTracer* tracer);

  // Host-stack snapshot hooks (the Dispatcher embeds these per worker).
  // save_state is non-const only because it reaches the composed
  // sessions' drivers; it performs no accesses and mutates nothing.
  void save_state(snap::StateWriter& w);
  void restore_state(snap::StateReader& r);

 private:
  enum class Stage : u8 { kIdle = 0, kHead = 1, kTail = 2 };

  cpu::Gpp& gpp_;
  ChainLayout layout_;
  ChainMode mode_;
  fifo::ChainLink& link_;
  OcpSession head_;
  OcpSession tail_;
  Stage stage_ = Stage::kIdle;
};

}  // namespace ouessant::drv
