// Linux environment cost model (paper §IV).
//
// "Efficiently integrating Ouessant in a virtual-memory based environment
// such as Linux [...] The strong isolation between kernel and user modes
// and the high overhead induced by the kernel can quickly decrease
// performance." The paper's driver avoids per-word copies with mmap'd
// kernel buffers; the measured cost of the remaining kernel machinery is
// ~3000 cycles per invocation (DFT: 4000 cycles baremetal vs 7000 under
// Linux).
//
// LinuxEnv charges that machinery explicitly: syscall entry/exit, driver
// dispatch, interrupt-to-wakeup path — and, for the copy-based (non-mmap)
// driver variant, copy_from_user/copy_to_user per word, with the actual
// data movement performed between the "user" and "kernel DMA" regions of
// the simulated SRAM. Both variants of the paper's design discussion are
// therefore measurable (bench E3).
#pragma once

#include "drv/session.hpp"

namespace ouessant::drv {

/// Per-invocation kernel path costs in cycles, calibrated against the
/// paper's ~3000-cycle Linux overhead on a 50 MHz Leon3.
struct LinuxCosts {
  u32 user_lib = 150;         ///< user-space library wrapper
  u32 syscall_entry = 450;    ///< trap, mode switch, argument checks
  u32 driver_dispatch = 400;  ///< file-ops dispatch, request setup
  u32 irq_entry = 250;        ///< trap into the kernel on completion IRQ
  u32 irq_handler = 200;      ///< driver ISR: ack device, complete request
  u32 wakeup_schedule = 900;  ///< wake sleeping task, scheduler pass
  u32 syscall_exit = 350;     ///< return to user space
  u32 copy_user_per_word = 8; ///< copy_{from,to}_user, per 32-bit word
  u32 mmap_setup = 2500;      ///< one-time mmap() of the DMA buffer

  [[nodiscard]] u32 fixed_overhead() const {
    return user_lib + syscall_entry + driver_dispatch + irq_entry +
           irq_handler + wakeup_schedule + syscall_exit;
  }
};

/// How application data reaches the DMA-able kernel buffer.
enum class XferMode {
  kMmap,      ///< paper's driver: user buffer IS the kernel buffer
  kCopyUser,  ///< naive driver: copy_from_user / copy_to_user each call
};

class LinuxEnv {
 public:
  explicit LinuxEnv(LinuxCosts costs = {}) : costs_(costs) {}

  /// One-time per-buffer setup cost (mmap mode only).
  void charge_mmap_setup(cpu::Gpp& gpp) { gpp.spend(costs_.mmap_setup); }

  /// Run one accelerated invocation of @p session under the Linux model.
  ///
  /// kMmap: the session's in/out banks are the mmap'd buffer; no copies.
  /// kCopyUser: @p user_in / @p user_out are the application buffers; the
  /// kernel copies them to/from the session's DMA banks, charged per word.
  ///
  /// Returns total cycles from syscall issue to return to user space.
  u64 invoke(OcpSession& session, XferMode mode, Addr user_in = 0,
             Addr user_out = 0);

  [[nodiscard]] const LinuxCosts& costs() const { return costs_; }

 private:
  LinuxCosts costs_;
};

}  // namespace ouessant::drv
