#include "drv/chain.hpp"

#include "ouessant/codegen.hpp"

namespace ouessant::drv {

const char* chain_mode_name(ChainMode mode) {
  switch (mode) {
    case ChainMode::kLinked:
      return "linked";
    case ChainMode::kStoreForward:
      return "store_forward";
  }
  return "?";
}

namespace {

SessionLayout head_layout(const ChainLayout& cl) {
  const u32 words = cl.max_batch * cl.block_words;
  // The head's output bank points at the bounce buffer: unused while
  // linked (the chain head program has no mvfc), live in store-and-
  // forward mode — one layout serves both modes.
  return SessionLayout{.prog_base = cl.head_prog_base,
                       .in_base = cl.in_base,
                       .out_base = cl.bounce_base,
                       .in_words = words,
                       .out_words = words};
}

SessionLayout tail_layout(const ChainLayout& cl) {
  const u32 words = cl.max_batch * cl.block_words;
  return SessionLayout{.prog_base = cl.tail_prog_base,
                       .in_base = cl.bounce_base,
                       .out_base = cl.out_base,
                       .in_words = words,
                       .out_words = words};
}

}  // namespace

ChainSession::ChainSession(cpu::Gpp& gpp, mem::Sram& mem, core::Ocp& head,
                           core::Ocp& tail, fifo::ChainLink& link,
                           ChainLayout layout, ChainMode mode)
    : gpp_(gpp),
      layout_(layout),
      mode_(mode),
      link_(link),
      head_(gpp, mem, head, head_layout(layout)),
      tail_(gpp, mem, tail, tail_layout(layout)) {
  if (layout_.block_words == 0 || layout_.max_batch == 0) {
    throw ConfigError("ChainSession: zero-sized chain layout");
  }
  if (head.output_fifos().size() != 1 || tail.input_fifos().size() != 1) {
    throw ConfigError(
        "ChainSession: chain endpoints must expose exactly one FIFO per "
        "direction (head " +
        head.name() + " has " + std::to_string(head.output_fifos().size()) +
        " outputs, tail " + tail.name() + " has " +
        std::to_string(tail.input_fifos().size()) + " inputs)");
  }
  link_.bind(*head.output_fifos().front(), *tail.input_fifos().front());
  // The CHAIN CSR bit is the hardware-visible arm switch: BusInterface
  // reports every transition and the link gates on it, so the conduit's
  // state is exactly what software last programmed — including across a
  // snapshot restore (the bit is re-derived from the restored CTRL).
  head.iface().set_chain_listener(
      [this](bool on) { link_.set_enabled(on); });
}

void ChainSession::install(u32 batch, bool timed_program) {
  if (batch == 0 || batch > layout_.max_batch) {
    throw ConfigError("ChainSession: batch " + std::to_string(batch) +
                      " outside 1.." + std::to_string(layout_.max_batch));
  }
  core::StreamJob per_block;
  per_block.in_words = layout_.block_words;
  per_block.out_words = layout_.block_words;
  per_block.burst = layout_.block_words;
  per_block.use_loop = true;
  if (mode_ == ChainMode::kLinked) {
    head_.install(core::build_chain_head_program(per_block, batch),
                  timed_program);
    tail_.install(core::build_chain_tail_program(per_block, batch),
                  timed_program);
    if (!head_.driver().chain_shadow()) head_.driver().enable_chain(true);
  } else {
    head_.install(core::build_batch_program(per_block, batch), timed_program);
    tail_.install(core::build_batch_program(per_block, batch), timed_program);
  }
}

void ChainSession::put_input(const std::vector<u32>& words) {
  if (words.size() > layout_.max_batch * layout_.block_words) {
    throw ConfigError("ChainSession::put_input: size exceeds window");
  }
  head_.memory().load(layout_.in_base, words);
}

std::vector<u32> ChainSession::get_output(u32 words) const {
  return const_cast<OcpSession&>(tail_).memory().dump(layout_.out_base,
                                                      words);
}

u64 ChainSession::run_irq(u64 timeout) {
  const Cycle t0 = gpp_.now();
  if (mode_ == ChainMode::kLinked) {
    // Tail first: its exec parks on the empty input FIFO, so no word the
    // head emits can ever find the consumer unarmed. The head runs with
    // IE off — its latched D is acknowledged after the chain retires.
    tail_.driver().enable_irq(true);
    tail_.driver().start();
    head_.driver().start();
    tail_.driver().wait_done_irq(timeout);
    if (!head_.driver().done_bit_set()) {
      throw SimError("ChainSession: tail " + tail_.ocp().name() +
                     " completed but head " + head_.ocp().name() +
                     " has no D latched — the chain retired out of order");
    }
    head_.driver().clear_done();
  } else {
    head_.run_irq(timeout);
    tail_.run_irq(timeout);
  }
  stage_ = Stage::kIdle;
  return gpp_.now() - t0;
}

void ChainSession::start_async() {
  if (stage_ != Stage::kIdle) {
    throw SimError("ChainSession: start_async while a chain is in flight");
  }
  if (mode_ == ChainMode::kLinked) {
    tail_.start_async();
    head_.start_async();
    stage_ = Stage::kTail;
  } else {
    head_.start_async();
    stage_ = Stage::kHead;
  }
}

void ChainSession::advance_to_tail() {
  if (stage_ != Stage::kHead) {
    throw SimError("ChainSession: advance_to_tail with no head stage open");
  }
  head_.driver().clear_done();
  tail_.start_async();
  stage_ = Stage::kTail;
}

void ChainSession::retire_ack() {
  // Fault paths can retire a chain whose head never reached EOP — the
  // conditional keeps the ack idempotent there; the happy linked path
  // always finds (and clears) the latched D.
  if (mode_ == ChainMode::kLinked && head_.driver().done_bit_set()) {
    head_.driver().clear_done();
  }
  stage_ = Stage::kIdle;
}

void ChainSession::recover() {
  head_.recover();
  tail_.recover();
  link_.flush();
  stage_ = Stage::kIdle;
}

void ChainSession::set_tracer(obs::EventTracer* tracer) {
  head_.set_tracer(tracer);
  tail_.set_tracer(tracer);
}

void ChainSession::save_state(snap::StateWriter& w) {
  head_.driver().save_state(w);
  tail_.driver().save_state(w);
  w.write_u8("chain_stage", static_cast<u8>(stage_));
}

void ChainSession::restore_state(snap::StateReader& r) {
  head_.driver().restore_state(r);
  tail_.driver().restore_state(r);
  const u8 stage = r.read_u8("chain_stage");
  if (stage > static_cast<u8>(Stage::kTail)) {
    throw snap::SnapshotError("ChainSession: bad stage " +
                              std::to_string(stage));
  }
  stage_ = static_cast<Stage>(stage);
}

}  // namespace ouessant::drv
