#include "drv/ocp_driver.hpp"

namespace ouessant::drv {

using core::kCtrlBusy;
using core::kCtrlChain;
using core::kCtrlDone;
using core::kCtrlErr;
using core::kCtrlIe;
using core::kCtrlProg;
using core::kCtrlRst;
using core::kCtrlStart;

const char* wait_result_name(WaitResult r) {
  switch (r) {
    case WaitResult::kDone: return "done";
    case WaitResult::kErr: return "err";
    case WaitResult::kTimeout: return "timeout";
  }
  return "?";
}

OcpDriver::OcpDriver(cpu::Gpp& gpp, Addr reg_base, cpu::IrqLine& irq,
                     std::string name)
    : gpp_(gpp), base_(reg_base), irq_(irq), name_(std::move(name)) {}

void OcpDriver::set_bank(u32 n, Addr phys) {
  if (n >= core::kNumBankRegs) {
    throw SimError("OcpDriver(" + name_ + "): bank index out of range");
  }
  gpp_.write32(base_ + core::bank_reg(n), phys);
}

void OcpDriver::install_program(Addr prog_base, const core::Program& prog) {
  const auto image = prog.image();
  gpp_.write_burst(prog_base, image);
  set_bank(core::kProgramBank, prog_base);
  gpp_.write32(base_ + core::kRegProgSize, static_cast<u32>(image.size()));
}

void OcpDriver::install_program_backdoor(mem::Sram& mem, Addr prog_base,
                                         const core::Program& prog) {
  mem.load(prog_base, prog.image());
  set_bank(core::kProgramBank, prog_base);
  gpp_.write32(base_ + core::kRegProgSize, static_cast<u32>(prog.size()));
}

u32 OcpDriver::shadow() const {
  return (ie_ ? kCtrlIe : 0u) | (chain_ ? kCtrlChain : 0u);
}

void OcpDriver::enable_irq(bool on) {
  ie_ = on;
  gpp_.write32(base_ + core::kRegCtrl, shadow());
}

void OcpDriver::enable_chain(bool on) {
  chain_ = on;
  gpp_.write32(base_ + core::kRegCtrl, shadow());
}

void OcpDriver::start() {
  gpp_.write32(base_ + core::kRegCtrl, kCtrlStart | shadow());
}

u32 OcpDriver::read_ctrl() { return gpp_.read32(base_ + core::kRegCtrl); }

bool OcpDriver::done_bit_set() { return (read_ctrl() & kCtrlDone) != 0; }

void OcpDriver::clear_done() {
  gpp_.write32(base_ + core::kRegCtrl, kCtrlDone | shadow());
}

void OcpDriver::clear_error() {
  gpp_.write32(base_ + core::kRegCtrl, kCtrlErr | shadow());
}

WaitResult OcpDriver::wait_done_poll_status(u64 poll_gap, u64 timeout,
                                            u32* polls_out) {
  const Cycle t0 = gpp_.now();
  u32 polls = 0;
  for (;;) {
    const u32 ctrl = read_ctrl();
    ++polls;
    if ((ctrl & kCtrlErr) != 0) {
      if (polls_out != nullptr) *polls_out = polls;
      return WaitResult::kErr;
    }
    if ((ctrl & kCtrlDone) != 0) break;
    if (gpp_.now() - t0 >= timeout) {
      if (polls_out != nullptr) *polls_out = polls;
      return WaitResult::kTimeout;
    }
    gpp_.spend(poll_gap);
  }
  clear_done();
  if (polls_out != nullptr) *polls_out = polls;
  return WaitResult::kDone;
}

WaitResult OcpDriver::wait_done_irq_status(u64 timeout) {
  try {
    gpp_.wait_for_irq(irq_, timeout);
  } catch (const SimError&) {
    return WaitResult::kTimeout;
  }
  const u32 ctrl = read_ctrl();
  if ((ctrl & kCtrlErr) != 0) return WaitResult::kErr;
  clear_done();
  return WaitResult::kDone;
}

u32 OcpDriver::wait_done_poll(u64 poll_gap, u64 timeout) {
  const Cycle t0 = gpp_.now();
  u32 polls = 0;
  switch (wait_done_poll_status(poll_gap, timeout, &polls)) {
    case WaitResult::kDone:
      return polls;
    case WaitResult::kErr:
      throw SimError("OcpDriver(" + name_ +
                     "): OCP signalled a microcode fault at cycle " +
                     std::to_string(gpp_.now()));
    case WaitResult::kTimeout:
      throw SimError("OcpDriver(" + name_ +
                     ")::wait_done_poll: no completion within " +
                     std::to_string(timeout) + " cycles (started cycle " +
                     std::to_string(t0) + ", now cycle " +
                     std::to_string(gpp_.now()) + ")");
  }
  return polls;  // unreachable
}

void OcpDriver::wait_done_irq(u64 timeout) {
  switch (wait_done_irq_status(timeout)) {
    case WaitResult::kDone:
      return;
    case WaitResult::kErr:
      throw SimError("OcpDriver(" + name_ +
                     "): OCP signalled a microcode fault at cycle " +
                     std::to_string(gpp_.now()));
    case WaitResult::kTimeout:
      // Identify the coprocessor and the deadline that actually expired
      // (the kernel's wait_for_irq message knows neither).
      throw SimError("OcpDriver(" + name_ +
                     ")::wait_done_irq: no interrupt within " +
                     std::to_string(timeout) + " cycles (gave up at cycle " +
                     std::to_string(gpp_.now()) + ")");
  }
}

void OcpDriver::soft_reset(u64 settle) {
  gpp_.write32(base_ + core::kRegCtrl, kCtrlRst | shadow());
  const Cycle t0 = gpp_.now();
  constexpr u32 kStatusBits = kCtrlBusy | kCtrlDone | kCtrlErr | kCtrlProg;
  while ((read_ctrl() & kStatusBits) != 0) {
    if (gpp_.now() - t0 >= settle) {
      throw SimError("OcpDriver(" + name_ +
                     ")::soft_reset: status bits still set after " +
                     std::to_string(settle) + " cycles");
    }
    gpp_.spend(4);
  }
}

void OcpDriver::save_state(snap::StateWriter& w) const {
  w.write_bool("ie", ie_);
  w.write_bool("chain", chain_);
}

void OcpDriver::restore_state(snap::StateReader& r) {
  ie_ = r.read_bool("ie");
  chain_ = r.read_bool("chain");
}

}  // namespace ouessant::drv
