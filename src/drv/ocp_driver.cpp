#include "drv/ocp_driver.hpp"

namespace ouessant::drv {

using core::kCtrlDone;
using core::kCtrlErr;
using core::kCtrlIe;
using core::kCtrlStart;

OcpDriver::OcpDriver(cpu::Gpp& gpp, Addr reg_base, cpu::IrqLine& irq,
                     std::string name)
    : gpp_(gpp), base_(reg_base), irq_(irq), name_(std::move(name)) {}

void OcpDriver::set_bank(u32 n, Addr phys) {
  if (n >= core::kNumBankRegs) {
    throw SimError("OcpDriver(" + name_ + "): bank index out of range");
  }
  gpp_.write32(base_ + core::bank_reg(n), phys);
}

void OcpDriver::install_program(Addr prog_base, const core::Program& prog) {
  const auto image = prog.image();
  gpp_.write_burst(prog_base, image);
  set_bank(core::kProgramBank, prog_base);
  gpp_.write32(base_ + core::kRegProgSize, static_cast<u32>(image.size()));
}

void OcpDriver::install_program_backdoor(mem::Sram& mem, Addr prog_base,
                                         const core::Program& prog) {
  mem.load(prog_base, prog.image());
  set_bank(core::kProgramBank, prog_base);
  gpp_.write32(base_ + core::kRegProgSize, static_cast<u32>(prog.size()));
}

void OcpDriver::enable_irq(bool on) {
  ie_ = on;
  gpp_.write32(base_ + core::kRegCtrl, on ? kCtrlIe : 0);
}

void OcpDriver::start() {
  gpp_.write32(base_ + core::kRegCtrl, kCtrlStart | (ie_ ? kCtrlIe : 0));
}

u32 OcpDriver::read_ctrl() { return gpp_.read32(base_ + core::kRegCtrl); }

bool OcpDriver::done_bit_set() { return (read_ctrl() & kCtrlDone) != 0; }

void OcpDriver::clear_done() {
  gpp_.write32(base_ + core::kRegCtrl, kCtrlDone | (ie_ ? kCtrlIe : 0));
}

u32 OcpDriver::wait_done_poll(u64 poll_gap, u64 timeout) {
  const Cycle t0 = gpp_.now();
  u32 polls = 0;
  for (;;) {
    const u32 ctrl = read_ctrl();
    ++polls;
    if ((ctrl & kCtrlErr) != 0) {
      throw SimError("OcpDriver(" + name_ +
                     "): OCP signalled a microcode fault at cycle " +
                     std::to_string(gpp_.now()));
    }
    if ((ctrl & kCtrlDone) != 0) break;
    if (gpp_.now() - t0 >= timeout) {
      throw SimError("OcpDriver(" + name_ +
                     ")::wait_done_poll: no completion within " +
                     std::to_string(timeout) + " cycles (started cycle " +
                     std::to_string(t0) + ", now cycle " +
                     std::to_string(gpp_.now()) + ")");
    }
    gpp_.spend(poll_gap);
  }
  clear_done();
  return polls;
}

void OcpDriver::wait_done_irq(u64 timeout) {
  try {
    gpp_.wait_for_irq(irq_, timeout);
  } catch (const SimError&) {
    // Re-throw with the coprocessor identified and the deadline that
    // actually expired (the kernel's message knows neither).
    throw SimError("OcpDriver(" + name_ +
                   ")::wait_done_irq: no interrupt within " +
                   std::to_string(timeout) + " cycles (gave up at cycle " +
                   std::to_string(gpp_.now()) + ")");
  }
  const u32 ctrl = read_ctrl();
  if ((ctrl & kCtrlErr) != 0) {
    throw SimError("OcpDriver(" + name_ +
                   "): OCP signalled a microcode fault at cycle " +
                   std::to_string(gpp_.now()));
  }
  clear_done();
}

}  // namespace ouessant::drv
