// OcpSession: one configured OCP invocation context — the memory layout
// (program bank, input bank, output bank), the installed microcode, and
// the start/wait sequences. This is the baremetal flavour of the paper's
// "software integration": the application configures the Ouessant
// (pointers to arrays), launches the computation and waits for results.
#pragma once

#include "drv/ocp_driver.hpp"
#include "fault/report.hpp"
#include "obs/tracer.hpp"
#include "ouessant/ocp.hpp"

namespace ouessant::drv {

/// What one fault-aware run produced. `ok` runs carry only the cycle
/// count; failed runs carry a typed FaultReport instead of an escaping
/// SimError, so service layers can retry without unwinding the stack.
struct RunOutcome {
  bool ok = true;
  u64 cycles = 0;
  fault::FaultReport report;
};

struct SessionLayout {
  Addr prog_base = 0;   ///< where the microcode image lives (bank 0)
  Addr in_base = 0;     ///< input data (bank 1)
  Addr out_base = 0;    ///< output data (bank 2)
  u32 in_words = 0;
  u32 out_words = 0;
};

class OcpSession {
 public:
  OcpSession(cpu::Gpp& gpp, mem::Sram& mem, core::Ocp& ocp,
             SessionLayout layout);

  /// Verify @p prog, write it into memory, and configure banks 0..2 and
  /// the program size — all through timed CPU bus accesses (or the memory
  /// backdoor for the program image when @p timed_program is false).
  void install(const core::Program& prog, bool timed_program = true);

  // Host-side data staging (backdoor; applications own their buffers).
  void put_input(const std::vector<u32>& words);
  [[nodiscard]] std::vector<u32> get_output() const;

  /// Start and poll for completion. Returns cycles from start to
  /// acknowledged completion. @p timeout reaches the driver's deadline
  /// check (and its SimError message) instead of being pinned to the
  /// old hard-coded 10'000'000.
  u64 run_poll(u64 poll_gap = 16, u64 timeout = kDefaultDriverTimeout);

  /// Start and sleep on the interrupt. Returns cycles elapsed.
  u64 run_irq(u64 timeout = kDefaultDriverTimeout);

  /// Start only (the CPU is free afterwards — the paper's "the GPP can
  /// process other tasks" mode). Pair with driver().wait_done_irq().
  void start_async();

  // -- fault-aware execution ---------------------------------------------
  /// run_poll that reports ERR / deadline expiry as a RunOutcome instead
  /// of throwing. Identical bus access sequence to run_poll on the happy
  /// path (proven by the unarmed bit-identity tests).
  RunOutcome try_run_poll(u64 poll_gap = 16,
                          u64 timeout = kDefaultDriverTimeout);

  /// run_irq, fault-aware. A timeout re-reads CTRL before giving up: a
  /// suppressed interrupt edge with D set is a *recovered* completion
  /// (outcome ok, report.recovered_irq = true), not a failure.
  RunOutcome try_run_irq(u64 timeout = kDefaultDriverTimeout);

  /// Clear a latched ERR (if any) and pulse kCtrlRst; afterwards the OCP
  /// is idle with banks and program intact, ready for a retry launch.
  void recover();

  [[nodiscard]] OcpDriver& driver() { return drv_; }
  [[nodiscard]] const SessionLayout& layout() const { return layout_; }
  [[nodiscard]] mem::Sram& memory() { return mem_; }
  [[nodiscard]] core::Ocp& ocp() { return ocp_; }

  /// Attach (or detach, nullptr) an event tracer. install/run_poll/
  /// run_irq become spans on a track "drv.<ocp name>"; start_async an
  /// instant (the CPU leaves immediately — there is nothing to span).
  void set_tracer(obs::EventTracer* tracer);

 private:
  /// Fill a FaultReport for a failed wait. kErr backdoor-reads the
  /// controller's last_fault() — the registers only carry the ERR bit,
  /// but the report wants when/where/why.
  [[nodiscard]] fault::FaultReport make_fault_report(WaitResult wr,
                                                     u64 timeout) const;

  cpu::Gpp& gpp_;
  mem::Sram& mem_;
  core::Ocp& ocp_;
  SessionLayout layout_;
  OcpDriver drv_;
  obs::EventTracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
};

}  // namespace ouessant::drv
