#include "drv/linux_env.hpp"

namespace ouessant::drv {

u64 LinuxEnv::invoke(OcpSession& session, XferMode mode, Addr user_in,
                     Addr user_out) {
  cpu::Gpp& gpp = session.driver().gpp();
  mem::Sram& mem = session.memory();
  const SessionLayout& lay = session.layout();
  const Cycle t0 = gpp.now();

  // User space -> kernel: syscall + driver dispatch.
  gpp.spend(costs_.user_lib + costs_.syscall_entry + costs_.driver_dispatch);

  if (mode == XferMode::kCopyUser) {
    // copy_from_user into the DMA buffer.
    for (u32 i = 0; i < lay.in_words; ++i) {
      mem.poke(lay.in_base + i * 4, mem.peek(user_in + i * 4));
    }
    gpp.spend(static_cast<u64>(costs_.copy_user_per_word) * lay.in_words);
  }

  // The driver starts the OCP with interrupts enabled and the task sleeps.
  session.driver().enable_irq(true);
  session.driver().start();
  gpp.wait_for_irq(session.ocp().irq());

  // IRQ -> driver ISR -> wakeup -> back in the syscall.
  gpp.spend(costs_.irq_entry + costs_.irq_handler + costs_.wakeup_schedule);
  session.driver().clear_done();

  if (mode == XferMode::kCopyUser) {
    // copy_to_user from the DMA buffer.
    for (u32 i = 0; i < lay.out_words; ++i) {
      mem.poke(user_out + i * 4, mem.peek(lay.out_base + i * 4));
    }
    gpp.spend(static_cast<u64>(costs_.copy_user_per_word) * lay.out_words);
  }

  gpp.spend(costs_.syscall_exit);
  return gpp.now() - t0;
}

}  // namespace ouessant::drv
