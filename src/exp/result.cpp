#include "exp/result.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ouessant::exp {

void Result::add_utilization(const platform::UtilizationReport& r) {
  add_metric("util_total_cycles", r.total_cycles);
  add_metric("util_bus_busy", r.bus_busy);
  add_metric("util_bus_idle", r.bus_idle);
  add_metric("util_cpu_compute", r.cpu_compute);
  add_metric("util_cpu_bus", r.cpu_bus);
  add_metric("util_cpu_idle", r.cpu_idle);
  for (const auto& o : r.ocps) {
    add_metric("util_" + o.name + "_instr", o.instructions);
    add_metric("util_" + o.name + "_words", o.words_moved);
    add_metric("util_" + o.name + "_runs", o.runs);
    add_metric("util_" + o.name + "_exec_wait", o.exec_wait);
    add_metric("util_" + o.name + "_idle", o.idle);
  }
}

std::string render_table(const std::vector<Result>& rows) {
  if (rows.empty()) return "(no results)\n";

  // Column set: params of the first row (all rows of one scenario share
  // the grid), then the union of metric names in first-seen order.
  std::vector<std::string> cols;
  std::vector<bool> is_param;
  for (const auto& [k, v] : rows.front().params.entries()) {
    cols.push_back(k);
    is_param.push_back(true);
  }
  for (const auto& row : rows) {
    for (const auto& [k, v] : row.metrics.entries()) {
      if (std::find(cols.begin(), cols.end(), k) == cols.end()) {
        cols.push_back(k);
        is_param.push_back(false);
      }
    }
  }

  auto cell = [](const Result& row, const std::string& col,
                 bool param) -> std::string {
    const ParamMap& m = param ? row.params : row.metrics;
    return m.has(col) ? m.at(col).str() : "-";
  };

  std::vector<std::size_t> width(cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    width[c] = cols[c].size();
    for (const auto& row : rows) {
      width[c] = std::max(width[c], cell(row, cols[c], is_param[c]).size());
    }
  }

  std::ostringstream os;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    os << (c ? "  " : "");
    os.width(static_cast<std::streamsize>(width[c]));
    os << (is_param[c] ? std::left : std::right);
    os << cols[c];
  }
  os << '\n';
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      os << (c ? "  " : "");
      os.width(static_cast<std::streamsize>(width[c]));
      os << (is_param[c] ? std::left : std::right);
      os << cell(row, cols[c], is_param[c]);
    }
    if (!row.ok) os << "  !! " << row.error;
    os << '\n';
  }
  return os.str();
}

namespace {

void append_map(std::ostringstream& os, const ParamMap& m) {
  os << '{';
  bool first = true;
  for (const auto& [k, v] : m.entries()) {
    if (!first) os << ", ";
    first = false;
    os << Value(k).json() << ": " << v.json();
  }
  os << '}';
}

}  // namespace

std::string to_json(const std::vector<Result>& results,
                    const std::vector<std::string>& meta_lines) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"ouessant.sweep.v1\",\n  \"meta\": {";
  for (std::size_t i = 0; i < meta_lines.size(); ++i) {
    os << (i ? ",\n           " : "\n           ") << meta_lines[i];
  }
  os << "\n  },\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    os << "    {\"scenario\": " << Value(r.scenario).json()
       << ", \"experiment\": " << Value(r.experiment).json()
       << ", \"ok\": " << (r.ok ? "true" : "false");
    if (!r.error.empty()) os << ", \"error\": " << Value(r.error).json();
    os << ",\n     \"params\": ";
    append_map(os, r.params);
    os << ",\n     \"metrics\": ";
    append_map(os, r.metrics);
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6f", r.host_seconds);
    os << ",\n     \"host_seconds\": " << buf << '}'
       << (i + 1 < results.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

void write_json(const std::string& path, const std::vector<Result>& results,
                const std::vector<std::string>& meta_lines) {
  std::ofstream out(path);
  if (!out) throw SimError("exp::write_json: cannot open " + path);
  out << to_json(results, meta_lines);
  if (!out.good()) throw SimError("exp::write_json: write failed on " + path);
}

}  // namespace ouessant::exp
