// Parameter points for the experiment layer.
//
// A ScenarioSpec declares a grid of named axes; the sweep engine expands
// the cartesian product into ParamMaps and hands one to each run. A
// ParamMap is a small ordered key->value record (order = declaration
// order, so tables, JSON and result comparison are deterministic).
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace ouessant::exp {

/// JSON string-literal escape of @p s (backslash, quote, control
/// characters; the result is NOT quoted). Every place that interpolates a
/// runtime string into hand-built JSON — sweep metadata, trace args,
/// scenario names — must route it through here: a filter expression or
/// file path containing a quote or backslash would otherwise corrupt the
/// document.
[[nodiscard]] std::string json_escape(const std::string& s);

/// One typed parameter (or metric) value. Kept deliberately small: the
/// experiment grids only need integers, reals and labels.
class Value {
 public:
  enum class Kind { kInt, kReal, kStr };

  Value() : kind_(Kind::kInt), i_(0), d_(0.0) {}
  Value(i64 v) : kind_(Kind::kInt), i_(v), d_(0.0) {}          // NOLINT
  Value(u64 v) : Value(static_cast<i64>(v)) {}                 // NOLINT
  Value(u32 v) : Value(static_cast<i64>(v)) {}                 // NOLINT
  Value(int v) : Value(static_cast<i64>(v)) {}                 // NOLINT
  Value(double v) : kind_(Kind::kReal), i_(0), d_(v) {}        // NOLINT
  Value(std::string v)                                         // NOLINT
      : kind_(Kind::kStr), i_(0), d_(0.0), s_(std::move(v)) {}
  Value(const char* v) : Value(std::string(v)) {}              // NOLINT

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] i64 as_int() const;
  [[nodiscard]] u64 as_u64() const { return static_cast<u64>(as_int()); }
  [[nodiscard]] double as_real() const;
  [[nodiscard]] const std::string& as_str() const;

  /// Render for tables and logs ("64", "1.594", "v2 loop").
  [[nodiscard]] std::string str() const;
  /// Render as a JSON literal (strings quoted/escaped, reals with enough
  /// digits to round-trip).
  [[nodiscard]] std::string json() const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Kind kind_;
  i64 i_;
  double d_;
  std::string s_;
};

/// Ordered key -> Value record. Lookup is linear — maps hold a handful of
/// entries and are built once per run.
class ParamMap {
 public:
  void set(const std::string& key, Value v);

  [[nodiscard]] bool has(const std::string& key) const;
  /// Throws ConfigError when @p key is absent (a scenario asking for a
  /// parameter its grid never declared is a programming error).
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] i64 get_int(const std::string& key) const;
  [[nodiscard]] u32 get_u32(const std::string& key) const;
  [[nodiscard]] double get_real(const std::string& key) const;
  [[nodiscard]] const std::string& get_str(const std::string& key) const;

  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& entries()
      const {
    return kv_;
  }
  [[nodiscard]] bool empty() const { return kv_.empty(); }

  /// "burst=64 isa=v1" — stable, human-readable point id.
  [[nodiscard]] std::string str() const;

  friend bool operator==(const ParamMap& a, const ParamMap& b) {
    return a.kv_ == b.kv_;
  }

 private:
  std::vector<std::pair<std::string, Value>> kv_;
};

}  // namespace ouessant::exp
