#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace ouessant::exp {

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string part =
        s.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!part.empty()) out.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

bool matches_filter(const ScenarioSpec& spec, const std::string& filter) {
  if (filter.empty()) return true;
  for (const std::string& needle : split_commas(filter)) {
    if (spec.name.find(needle) != std::string::npos ||
        spec.experiment.find(needle) != std::string::npos ||
        spec.title.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::vector<SweepJob> expand_jobs(const Registry& registry,
                                  const std::string& filter) {
  std::vector<SweepJob> jobs;
  for (const ScenarioSpec& spec : registry.scenarios()) {
    if (!matches_filter(spec, filter)) continue;
    for (ParamMap& point : spec.points()) {
      jobs.push_back(SweepJob{.spec = &spec, .params = std::move(point)});
    }
  }
  return jobs;
}

std::vector<SweepJob> expand_jobs(const Registry& registry,
                                  const SweepOptions& options) {
  std::vector<SweepJob> jobs = expand_jobs(registry, options.filter);
  const ScenarioSpec* last = nullptr;
  std::size_t point = 0;
  for (SweepJob& job : jobs) {
    if (!job.spec->run_ctx) continue;  // plain runs take no context
    job.seed = options.seed;
    job.faults = options.faults;
    job.restore_path = options.restore_path;
    job.chain = options.chain;
    if (options.trace_stem.empty() && options.trace_events_stem.empty() &&
        options.snapshot_stem.empty()) {
      continue;
    }
    // One per-spec point counter shared by all artifact kinds, so the
    // VCD, event trace and snapshot of the same run carry the same
    // suffix.
    point = (job.spec == last) ? point + 1 : 0;
    last = job.spec;
    const std::string suffix =
        "_" + job.spec->name + "_" + std::to_string(point);
    if (!options.trace_stem.empty()) {
      job.trace_path = options.trace_stem + suffix + ".vcd";
    }
    if (!options.trace_events_stem.empty()) {
      job.trace_events_path =
          options.trace_events_stem + suffix + ".trace.json";
    }
    if (!options.snapshot_stem.empty()) {
      job.snapshot_path = options.snapshot_stem + suffix + ".snap";
    }
  }
  return jobs;
}

Result run_job(const SweepJob& job) {
  Result r;
  r.scenario = job.spec->name;
  r.experiment = job.spec->experiment;
  r.params = job.params;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (job.spec->run_ctx) {
      RunContext ctx;
      ctx.seed = job.seed.value_or(job.spec->default_seed);
      ctx.trace_path = job.trace_path;
      ctx.trace_events_path = job.trace_events_path;
      ctx.faults = job.faults;
      ctx.snapshot_path = job.snapshot_path;
      ctx.restore_path = job.restore_path;
      ctx.chain = job.chain;
      job.spec->run_ctx(job.params, ctx, r);
    } else {
      job.spec->run(job.params, r);
    }
  } catch (const std::exception& e) {
    r.fail(e.what());
  } catch (...) {
    r.fail("unknown exception");
  }
  r.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

SweepOutcome run_sweep(const Registry& registry, const SweepOptions& options) {
  const std::vector<SweepJob> jobs = expand_jobs(registry, options);
  SweepOutcome out;
  out.jobs = options.jobs < 1 ? 1 : options.jobs;
  out.results.resize(jobs.size());

  const auto t0 = std::chrono::steady_clock::now();
  if (out.jobs == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      out.results[i] = run_job(jobs[i]);
    }
  } else {
    // Shared-index work stealing: workers claim the next job and write
    // its result into the slot reserved for its expansion index, so the
    // output order is independent of scheduling.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) return;
        out.results[i] = run_job(jobs[i]);
      }
    };
    std::vector<std::thread> pool;
    const std::size_t n_workers =
        std::min<std::size_t>(static_cast<std::size_t>(out.jobs), jobs.size());
    pool.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const Result& r : out.results) {
    if (!r.ok) ++out.failed;
  }
  return out;
}

}  // namespace ouessant::exp
