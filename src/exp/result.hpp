// Structured experiment results.
//
// Every scenario run fills one Result: the parameter point it ran at, an
// ordered list of named metrics (cycle counts, sizes, ratios), and
// optionally the SoC utilization snapshot (platform::UtilizationReport)
// flattened into metrics. Results are what the table renderer prints,
// what the JSON writer persists into BENCH_*.json, and what the
// determinism tests compare bit-for-bit between --jobs 1 and --jobs 8.
#pragma once

#include <string>
#include <vector>

#include "exp/param.hpp"
#include "platform/report.hpp"

namespace ouessant::exp {

struct Result {
  std::string scenario;    ///< registry name, e.g. "e4_transfer"
  std::string experiment;  ///< paper id, e.g. "E4"
  ParamMap params;         ///< the grid point this run executed
  ParamMap metrics;        ///< named measurements, in insertion order
  bool ok = true;          ///< false => the run failed an invariant
  std::string error;       ///< what went wrong (exception text, mismatch)
  double host_seconds = 0.0;  ///< wall time of this run (not compared)

  /// Record one measurement. Metrics keep insertion order so tables and
  /// JSON are reproducible.
  void add_metric(const std::string& name, Value v) {
    metrics.set(name, std::move(v));
  }

  /// Mark the run failed with @p why (keeps the first failure).
  void fail(const std::string& why) {
    if (ok) {
      ok = false;
      error = why;
    }
  }

  /// Flatten a utilization snapshot into metrics (prefix "util_"), so
  /// the report rides along into JSON without a second schema.
  void add_utilization(const platform::UtilizationReport& r);

  /// Everything except host timing — the payload that must be
  /// bit-identical across --jobs levels.
  friend bool same_payload(const Result& a, const Result& b) {
    return a.scenario == b.scenario && a.experiment == b.experiment &&
           a.params == b.params && a.metrics == b.metrics && a.ok == b.ok &&
           a.error == b.error;
  }
};

/// Render one scenario's results as an aligned text table: parameter
/// columns first, then metric columns — the generic replacement for the
/// bespoke printf tables the bench binaries used to hand-roll.
[[nodiscard]] std::string render_table(const std::vector<Result>& rows);

/// Serialize a whole sweep into the BENCH_*.json schema (see
/// EXPERIMENTS.md): a `meta` object plus one entry per Result.
/// @p meta_lines are extra "key": value lines injected verbatim into the
/// meta object (already JSON-formatted).
[[nodiscard]] std::string to_json(const std::vector<Result>& results,
                                  const std::vector<std::string>& meta_lines);

/// to_json + write to @p path. Throws SimError when the file can't be
/// written.
void write_json(const std::string& path, const std::vector<Result>& results,
                const std::vector<std::string>& meta_lines);

}  // namespace ouessant::exp
