// Scenario registry: the declarative experiment API.
//
// A ScenarioSpec names one paper experiment (or tool guard), declares its
// parameter grid, and provides a run function that — given one grid
// point — assembles a *fresh, fully isolated* simulation (its own
// sim::Kernel, platform::Soc, RACs, sessions), executes the workload and
// fills a Result. Isolation is the concurrency model: the sweep engine
// may execute any two runs on different threads, which is sound because
// runs share no mutable state (see DESIGN.md §8 for the audit of the
// no-mutable-statics rule this relies on).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/param.hpp"
#include "exp/result.hpp"

namespace ouessant::exp {

/// Per-run context the sweep threads into context-aware scenarios: the
/// seed the run must use (the spec's default_seed unless the driver's
/// --seed overrides it) and optional trace destinations ("" = off) — a
/// VCD waveform path and a Chrome trace-event JSON path. Plain runs
/// (ScenarioSpec::run) never see it.
struct RunContext {
  u64 seed = 0;
  std::string trace_path;
  std::string trace_events_path;
  /// Fault plan spec string (ouessant_bench --faults, fault::FaultPlan
  /// grammar). "" = the scenario's built-in plan (usually none). Only
  /// the serve_faulty family consults it.
  std::string faults;
  /// Snapshot destination ("" = off): snapshot-aware scenarios (the
  /// serve_* family) save their final service state here after the run
  /// (ouessant_bench --snapshot STEM).
  std::string snapshot_path;
  /// Snapshot source ("" = cold boot): snapshot-aware scenarios
  /// warm-boot from this file — the stack must have been built from the
  /// same configuration, or restore throws SnapshotError
  /// (ouessant_bench --restore FILE).
  std::string restore_path;
  /// Chain-mode override (ouessant_bench --chain): "linked" or
  /// "store_forward" forces every chain-aware scenario (the chain_* /
  /// serve_jpeg family) to that intermediate-block routing; "" = the
  /// scenario runs its built-in grid/default. Other scenarios ignore it.
  std::string chain;
};

/// One named grid axis. The sweep expands axes in declaration order with
/// the last axis varying fastest — the same order as the nested for-loops
/// of the pre-registry bench binaries, so transcripts stay comparable.
struct Axis {
  std::string name;
  std::vector<Value> values;
};

struct ScenarioSpec {
  std::string name;        ///< registry key, e.g. "e4_transfer"
  std::string experiment;  ///< paper id, e.g. "E4"
  std::string title;       ///< one-line description for --list
  std::vector<Axis> grid;  ///< empty => a single parameterless point

  /// Optional: return true to drop a grid point (invalid combination).
  std::function<bool(const ParamMap&)> skip;

  /// Upper bound on simulated cycles any single run may need; runs are
  /// expected to finish their run_until()s well under this (the spec
  /// value is published in --list and asserted by tests/test_scenario).
  u64 timeout_cycles = 10'000'000;

  /// False for scenarios whose metrics include host wall-clock readings
  /// (e.g. the kernel throughput guard). Run-to-run payload comparisons
  /// — the --compare-jobs bit-identity check and tests/test_scenario —
  /// skip non-deterministic scenarios.
  bool deterministic = true;

  /// Seed handed to run_ctx scenarios when the driver does not override
  /// it. Scenarios without randomness leave it at 0 and ignore it.
  u64 default_seed = 0;

  /// Execute one grid point. Must build all simulation state locally,
  /// must not touch global mutable state, and reports failures by
  /// filling @p result (throwing is also safe: the sweep converts the
  /// exception into result.fail()).
  std::function<void(const ParamMap&, Result&)> run;

  /// Context-aware alternative to run: also receives the RunContext
  /// (seed + trace path). A spec provides exactly one of run / run_ctx.
  std::function<void(const ParamMap&, const RunContext&, Result&)> run_ctx;

  /// Number of points after skip-filtering.
  [[nodiscard]] std::size_t point_count() const;

  /// Expand the grid (minus skipped points) in deterministic order.
  [[nodiscard]] std::vector<ParamMap> points() const;
};

/// An ordered collection of scenarios. Built once (single-threaded) at
/// startup by explicit registration calls, then only read — never mutated
/// during a sweep.
class Registry {
 public:
  /// Throws ConfigError on duplicate names or a missing run function.
  void add(ScenarioSpec spec);

  [[nodiscard]] const std::vector<ScenarioSpec>& scenarios() const {
    return scenarios_;
  }
  [[nodiscard]] const ScenarioSpec* find(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

 private:
  std::vector<ScenarioSpec> scenarios_;
};

}  // namespace ouessant::exp
