#include "exp/param.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ouessant::exp {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

i64 Value::as_int() const {
  if (kind_ != Kind::kInt) {
    throw ConfigError("exp::Value: not an integer (holds \"" + str() + "\")");
  }
  return i_;
}

double Value::as_real() const {
  if (kind_ == Kind::kReal) return d_;
  if (kind_ == Kind::kInt) return static_cast<double>(i_);
  throw ConfigError("exp::Value: not a number (holds \"" + str() + "\")");
}

const std::string& Value::as_str() const {
  if (kind_ != Kind::kStr) {
    throw ConfigError("exp::Value: not a string (holds \"" + str() + "\")");
  }
  return s_;
}

std::string Value::str() const {
  switch (kind_) {
    case Kind::kInt:
      return std::to_string(i_);
    case Kind::kStr:
      return s_;
    case Kind::kReal: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", d_);
      return buf;
    }
  }
  return {};
}

std::string Value::json() const {
  switch (kind_) {
    case Kind::kInt:
      return std::to_string(i_);
    case Kind::kReal: {
      if (!std::isfinite(d_)) return "null";
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", d_);
      return buf;
    }
    case Kind::kStr:
      return '"' + json_escape(s_) + '"';
  }
  return "null";
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Value::Kind::kInt:
      return a.i_ == b.i_;
    case Value::Kind::kReal:
      return a.d_ == b.d_;
    case Value::Kind::kStr:
      return a.s_ == b.s_;
  }
  return false;
}

void ParamMap::set(const std::string& key, Value v) {
  for (auto& [k, old] : kv_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  kv_.emplace_back(key, std::move(v));
}

bool ParamMap::has(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return true;
  }
  return false;
}

const Value& ParamMap::at(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return v;
  }
  throw ConfigError("ParamMap: no parameter \"" + key + "\" in {" + str() +
                    "}");
}

i64 ParamMap::get_int(const std::string& key) const { return at(key).as_int(); }

u32 ParamMap::get_u32(const std::string& key) const {
  return static_cast<u32>(at(key).as_int());
}

double ParamMap::get_real(const std::string& key) const {
  return at(key).as_real();
}

const std::string& ParamMap::get_str(const std::string& key) const {
  return at(key).as_str();
}

std::string ParamMap::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : kv_) {
    if (!first) os << ' ';
    first = false;
    os << k << '=' << v.str();
  }
  return os.str();
}

}  // namespace ouessant::exp
