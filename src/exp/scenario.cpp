#include "exp/scenario.hpp"

namespace ouessant::exp {

std::vector<ParamMap> ScenarioSpec::points() const {
  std::vector<ParamMap> out;
  ParamMap point;
  // Depth-first product, last axis fastest — mirrors the nested loops of
  // the pre-registry bench binaries.
  const std::function<void(std::size_t)> expand = [&](std::size_t axis) {
    if (axis == grid.size()) {
      if (!skip || !skip(point)) out.push_back(point);
      return;
    }
    for (const Value& v : grid[axis].values) {
      point.set(grid[axis].name, v);
      expand(axis + 1);
    }
  };
  expand(0);
  return out;
}

std::size_t ScenarioSpec::point_count() const { return points().size(); }

void Registry::add(ScenarioSpec spec) {
  if (spec.name.empty()) {
    throw ConfigError("Registry::add: scenario needs a name");
  }
  if (!spec.run && !spec.run_ctx) {
    throw ConfigError("Registry::add(" + spec.name + "): no run function");
  }
  if (spec.run && spec.run_ctx) {
    throw ConfigError("Registry::add(" + spec.name +
                      "): provide run or run_ctx, not both");
  }
  if (find(spec.name) != nullptr) {
    throw ConfigError("Registry::add: duplicate scenario \"" + spec.name +
                      "\"");
  }
  scenarios_.push_back(std::move(spec));
}

const ScenarioSpec* Registry::find(const std::string& name) const {
  for (const auto& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace ouessant::exp
