// SweepRunner: fan a scenario parameter grid across a pool of worker
// threads, one fully isolated simulation per (scenario, point) job.
//
// Determinism contract: the result vector is indexed by job expansion
// order (registry order x grid order), not by completion order, and every
// run builds its entire simulation locally — so the results are
// bit-identical for any --jobs level. The throughput headline of the
// experiment layer is that the E1–E12 sweep scales near-linearly with
// --jobs on a multi-core host.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exp/result.hpp"
#include "exp/scenario.hpp"

namespace ouessant::exp {

struct SweepOptions {
  /// Worker threads. 1 = run inline on the calling thread; n > 1 spawns
  /// n workers pulling jobs from a shared queue.
  int jobs = 1;
  /// Comma-separated list of substrings; a scenario runs when its name,
  /// experiment id or title contains any of them. Empty = everything.
  std::string filter;
  /// Override every run_ctx scenario's default_seed (ouessant_bench
  /// --seed). Unset = each spec's built-in seed, so the default sweep
  /// stays bit-identical run to run.
  std::optional<u64> seed;
  /// When non-empty, each run_ctx job gets a VCD trace written to
  /// "<stem>_<scenario>_<point>.vcd" (ouessant_bench --trace).
  std::string trace_stem;
  /// When non-empty, each run_ctx job gets a Chrome trace-event JSON
  /// (plus a "<...>.metrics.json" time-series) written to
  /// "<stem>_<scenario>_<point>.trace.json" (--trace-events).
  std::string trace_events_stem;
  /// Fault plan spec forwarded to every run_ctx job (ouessant_bench
  /// --faults). "" = scenarios keep their built-in plans.
  std::string faults;
  /// When non-empty, each run_ctx job gets a snapshot destination
  /// "<stem>_<scenario>_<point>.snap" (ouessant_bench --snapshot).
  std::string snapshot_stem;
  /// Snapshot file every run_ctx job warm-boots from (ouessant_bench
  /// --restore). "" = cold boot. Only meaningful with a --filter that
  /// selects the configuration the snapshot was taken from.
  std::string restore_path;
  /// Chain-mode override forwarded to every run_ctx job (ouessant_bench
  /// --chain). "" = scenarios keep their built-in chain grids.
  std::string chain;
};

/// One expanded (scenario, grid point) work item.
struct SweepJob {
  const ScenarioSpec* spec = nullptr;
  ParamMap params;
  /// Seed override for run_ctx specs (from SweepOptions::seed).
  std::optional<u64> seed;
  /// Per-job VCD destination ("" = no tracing).
  std::string trace_path;
  /// Per-job trace-event JSON destination ("" = no tracing).
  std::string trace_events_path;
  /// Fault plan spec override ("" = scenario default).
  std::string faults;
  /// Per-job snapshot destination ("" = off).
  std::string snapshot_path;
  /// Snapshot file to warm-boot from ("" = cold boot).
  std::string restore_path;
  /// Chain-mode override ("" = scenario default).
  std::string chain;
};

struct SweepOutcome {
  std::vector<Result> results;  ///< job expansion order, all jobs levels
  double wall_seconds = 0.0;    ///< whole sweep, host wall clock
  int jobs = 1;
  std::size_t failed = 0;  ///< results with ok == false

  [[nodiscard]] bool all_ok() const { return failed == 0; }
};

/// True when @p spec matches @p filter (see SweepOptions::filter).
[[nodiscard]] bool matches_filter(const ScenarioSpec& spec,
                                  const std::string& filter);

/// Expand every matching scenario's grid into the deterministic job list.
[[nodiscard]] std::vector<SweepJob> expand_jobs(const Registry& registry,
                                                const std::string& filter);

/// Same, but also stamping each job with the options' seed override and
/// per-job trace path (see SweepOptions).
[[nodiscard]] std::vector<SweepJob> expand_jobs(const Registry& registry,
                                                const SweepOptions& options);

/// Run one job in isolation; exceptions become result.fail().
[[nodiscard]] Result run_job(const SweepJob& job);

/// Expand and execute the sweep.
[[nodiscard]] SweepOutcome run_sweep(const Registry& registry,
                                     const SweepOptions& options);

}  // namespace ouessant::exp
