// Full JPEG-style decoder pipeline on the simulated SoC — the paper's
// motivating scenario taken end to end.
//
// The compressed stream is entropy-decoded and dequantized on the GPP
// (always a software job), while the 8x8 inverse DCTs run either:
//   (a) entirely in software,
//   (b) on the OCP, sequentially (decode block, then IDCT it),
//   (c) on the OCP, software-pipelined: the CPU entropy-decodes block k+1
//       while the coprocessor transforms block k — the "GPP can process
//       other tasks" property doing real work.
// Reports cycles, per-block costs, speedups and the decoded PSNR.
#include <cstdio>

#include "codec/jpeg.hpp"
#include "cpu/sw_kernels.hpp"
#include "drv/session.hpp"
#include "ouessant/codegen.hpp"
#include "platform/report.hpp"
#include "platform/soc.hpp"
#include "rac/idct.hpp"
#include "util/fixed.hpp"

using namespace ouessant;

namespace {

constexpr u32 kDim = 96;
constexpr Addr kProg = 0x4000'0000;
constexpr Addr kCoef = 0x4001'0000;
constexpr Addr kPix = 0x4002'0000;

/// Entropy-decode cost for ONE block, prorated from the whole stream (the
/// codec charges per token; here we decode everything up front and charge
/// per block as the pipeline consumes it).
struct Decoded {
  std::vector<std::array<i32, 64>> blocks;
  u64 entropy_cycles_total = 0;
};

Decoded entropy_stage(platform::Soc& soc, const codec::JpegImage& jpg) {
  const Cycle t0 = soc.kernel().now();
  Decoded d;
  d.blocks = codec::decode_coefficients(jpg, &soc.cpu());
  d.entropy_cycles_total = soc.kernel().now() - t0;
  return d;
}

}  // namespace

int main() {
  const auto img = codec::test_image(kDim, kDim);
  const auto jpg = codec::encode(img, 75);
  std::printf("JPEG pipeline: %ux%u, quality 75, %zu bytes (%.2f bpp), %u "
              "blocks\n\n",
              kDim, kDim, jpg.payload.size(), jpg.bits_per_pixel(),
              jpg.blocks());

  codec::Raster decoded_sw;
  codec::Raster decoded_hw;
  u64 sw_total = 0;
  u64 hw_seq_total = 0;
  u64 hw_pipe_total = 0;

  // ---------------- (a) all software -----------------------------------
  {
    platform::Soc soc;
    const Cycle t0 = soc.kernel().now();
    const Decoded d = entropy_stage(soc, jpg);
    std::vector<std::array<i32, 64>> pix(d.blocks.size());
    for (std::size_t b = 0; b < d.blocks.size(); ++b) {
      std::vector<u32> coef(64);
      for (u32 i = 0; i < 64; ++i) coef[i] = util::to_word(d.blocks[b][i]);
      soc.sram().load(kCoef, coef);
      cpu::sw::sw_idct8x8(soc.cpu(), soc.sram(), kCoef, kPix);
      const auto out = soc.sram().dump(kPix, 64);
      for (u32 i = 0; i < 64; ++i) pix[b][i] = util::from_word(out[i]);
    }
    sw_total = soc.kernel().now() - t0;
    decoded_sw = codec::assemble(pix, kDim, kDim);
  }

  // ---------------- (b) OCP, sequential --------------------------------
  {
    platform::Soc soc;
    rac::IdctRac idct(soc.kernel(), "idct");
    core::Ocp& ocp = soc.add_ocp(idct);
    drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                            {.prog_base = kProg, .in_base = kCoef,
                             .out_base = kPix, .in_words = 64,
                             .out_words = 64});
    session.install(core::build_stream_program(
        {.in_words = 64, .out_words = 64, .burst = 64}));
    const Cycle t0 = soc.kernel().now();
    const Decoded d = entropy_stage(soc, jpg);
    std::vector<std::array<i32, 64>> pix(d.blocks.size());
    for (std::size_t b = 0; b < d.blocks.size(); ++b) {
      std::vector<u32> coef(64);
      for (u32 i = 0; i < 64; ++i) coef[i] = util::to_word(d.blocks[b][i]);
      session.put_input(coef);
      session.run_irq();
      const auto out = session.get_output();
      for (u32 i = 0; i < 64; ++i) pix[b][i] = util::from_word(out[i]);
    }
    hw_seq_total = soc.kernel().now() - t0;
    decoded_hw = codec::assemble(pix, kDim, kDim);
  }

  // ---------------- (c) OCP, software-pipelined ------------------------
  {
    platform::Soc soc;
    rac::IdctRac idct(soc.kernel(), "idct");
    core::Ocp& ocp = soc.add_ocp(idct);
    drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                            {.prog_base = kProg, .in_base = kCoef,
                             .out_base = kPix, .in_words = 64,
                             .out_words = 64});
    session.install(core::build_stream_program(
        {.in_words = 64, .out_words = 64, .burst = 64}));
    session.driver().enable_irq(true);

    const Cycle t0 = soc.kernel().now();
    // Pre-decode the stream once to know token boundaries, then charge
    // per-block entropy time *inside* the loop, overlapped with the OCP.
    const auto blocks = codec::decode_coefficients(jpg);  // functional only
    const u64 per_block_entropy = [&] {
      platform::Soc probe;
      const Decoded d = entropy_stage(probe, jpg);
      return d.entropy_cycles_total / blocks.size();
    }();

    std::vector<std::array<i32, 64>> pix(blocks.size());
    // Prologue: decode block 0 (charge its entropy time).
    soc.cpu().spend(per_block_entropy);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      std::vector<u32> coef(64);
      for (u32 i = 0; i < 64; ++i) coef[i] = util::to_word(blocks[b][i]);
      session.put_input(coef);
      session.start_async();
      // While the OCP transforms block b, the CPU entropy-decodes b+1.
      if (b + 1 < blocks.size()) soc.cpu().spend(per_block_entropy);
      session.driver().wait_done_irq();
      const auto out = session.get_output();
      for (u32 i = 0; i < 64; ++i) pix[b][i] = util::from_word(out[i]);
    }
    hw_pipe_total = soc.kernel().now() - t0;

    const auto report = platform::make_report(soc);
    std::printf("pipelined run utilization:\n%s\n", report.render().c_str());
  }

  const u32 n = jpg.blocks();
  std::printf("%-38s %12s %12s\n", "decoder", "cycles", "cyc/block");
  std::printf("%-38s %12llu %12llu\n", "(a) software IDCT",
              static_cast<unsigned long long>(sw_total),
              static_cast<unsigned long long>(sw_total / n));
  std::printf("%-38s %12llu %12llu\n", "(b) OCP IDCT, sequential",
              static_cast<unsigned long long>(hw_seq_total),
              static_cast<unsigned long long>(hw_seq_total / n));
  std::printf("%-38s %12llu %12llu\n", "(c) OCP IDCT, pipelined with entropy",
              static_cast<unsigned long long>(hw_pipe_total),
              static_cast<unsigned long long>(hw_pipe_total / n));
  std::printf("\nspeedup (a)/(b): %.2fx   (a)/(c): %.2fx\n",
              static_cast<double>(sw_total) / hw_seq_total,
              static_cast<double>(sw_total) / hw_pipe_total);
  std::printf("PSNR: software %.2f dB, OCP %.2f dB (bit-identical: %s)\n",
              codec::psnr(img, decoded_sw), codec::psnr(img, decoded_hw),
              decoded_sw.samples == decoded_hw.samples ? "yes" : "NO");
  return decoded_sw.samples == decoded_hw.samples ? 0 : 1;
}
