// JPEG-style decoding with the 2D IDCT coprocessor — the paper's first
// application ("smartphones SoCs integrate hardware video decoders...").
//
// Pipeline: a synthetic 64x64 image is forward-DCT'd and quantized on the
// host (the "encoder"); the simulated SoC then dequantizes and inverse-
// transforms every 8x8 block twice — once in software on the GPP, once
// through the OCP-wrapped IDCT RAC — and the demo reports cycle counts,
// the speedup, and the reconstruction PSNR of both paths.
#include <cmath>
#include <cstdio>
#include <vector>

#include "cpu/sw_kernels.hpp"
#include "drv/session.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/idct.hpp"
#include "util/fixed.hpp"
#include "util/reference.hpp"

using namespace ouessant;

namespace {

constexpr u32 kDim = 64;               // image is kDim x kDim pixels
constexpr u32 kBlocks = (kDim / 8) * (kDim / 8);
constexpr Addr kProg = 0x4000'0000;
constexpr Addr kCoef = 0x4001'0000;    // dequantized coefficients (1 block)
constexpr Addr kPix = 0x4002'0000;     // reconstructed samples (1 block)

// The standard JPEG luminance quantization table.
constexpr int kQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

/// A deterministic synthetic photograph: smooth gradients + texture.
double source_pixel(u32 x, u32 y) {
  return 128.0 + 60.0 * std::sin(0.11 * x) * std::cos(0.07 * y) +
         30.0 * std::sin(0.45 * (x + y));
}

/// Host-side encoder: forward DCT + quantization per 8x8 block.
std::vector<std::array<i32, 64>> encode_image() {
  std::vector<std::array<i32, 64>> blocks;
  for (u32 by = 0; by < kDim / 8; ++by) {
    for (u32 bx = 0; bx < kDim / 8; ++bx) {
      double pix[64];
      double coef[64];
      for (u32 y = 0; y < 8; ++y) {
        for (u32 x = 0; x < 8; ++x) {
          pix[y * 8 + x] = source_pixel(bx * 8 + x, by * 8 + y) - 128.0;
        }
      }
      util::reference_dct8x8(pix, coef);
      std::array<i32, 64> q{};
      for (int i = 0; i < 64; ++i) {
        q[static_cast<std::size_t>(i)] = static_cast<i32>(
            std::lround(coef[i] / kQuant[i]));
      }
      blocks.push_back(q);
    }
  }
  return blocks;
}

double psnr(const std::vector<double>& ref, const std::vector<i32>& test) {
  double mse = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double d = ref[i] - static_cast<double>(test[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(ref.size());
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace

int main() {
  std::printf("JPEG-style decode: %ux%u image, %u blocks of 8x8\n\n", kDim,
              kDim, kBlocks);
  const auto blocks = encode_image();

  // Reference (uncompressed) image for PSNR.
  std::vector<double> reference(kDim * kDim);
  for (u32 y = 0; y < kDim; ++y) {
    for (u32 x = 0; x < kDim; ++x) {
      reference[y * kDim + x] = source_pixel(x, y) - 128.0;
    }
  }

  // ---------------- software decode on the GPP -------------------------
  std::vector<i32> sw_image(kDim * kDim);
  u64 sw_cycles = 0;
  {
    platform::Soc soc;
    for (u32 b = 0; b < kBlocks; ++b) {
      for (int i = 0; i < 64; ++i) {
        soc.sram().poke(kCoef + static_cast<Addr>(i) * 4,
                        util::to_word(blocks[b][static_cast<std::size_t>(i)] *
                                      kQuant[i]));
      }
      sw_cycles += cpu::sw::sw_idct8x8(soc.cpu(), soc.sram(), kCoef, kPix);
      const u32 bx = (b % (kDim / 8)) * 8;
      const u32 by = (b / (kDim / 8)) * 8;
      for (u32 y = 0; y < 8; ++y) {
        for (u32 x = 0; x < 8; ++x) {
          sw_image[(by + y) * kDim + bx + x] =
              util::from_word(soc.sram().peek(kPix + (y * 8 + x) * 4));
        }
      }
    }
  }

  // ---------------- hardware decode through the OCP --------------------
  std::vector<i32> hw_image(kDim * kDim);
  u64 hw_cycles = 0;
  {
    platform::Soc soc;
    rac::IdctRac idct(soc.kernel(), "idct");
    core::Ocp& ocp = soc.add_ocp(idct);
    drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                            {.prog_base = kProg, .in_base = kCoef,
                             .out_base = kPix, .in_words = 64,
                             .out_words = 64});
    session.install(core::build_stream_program(
        {.in_words = 64, .out_words = 64, .burst = 64, .overlap = true}));
    for (u32 b = 0; b < kBlocks; ++b) {
      std::vector<u32> coef(64);
      for (int i = 0; i < 64; ++i) {
        coef[static_cast<std::size_t>(i)] = util::to_word(
            blocks[b][static_cast<std::size_t>(i)] * kQuant[i]);
      }
      session.put_input(coef);
      hw_cycles += session.run_irq();
      const auto out = session.get_output();
      const u32 bx = (b % (kDim / 8)) * 8;
      const u32 by = (b / (kDim / 8)) * 8;
      for (u32 y = 0; y < 8; ++y) {
        for (u32 x = 0; x < 8; ++x) {
          hw_image[(by + y) * kDim + bx + x] =
              util::from_word(out[y * 8 + x]);
        }
      }
    }
  }

  // ---------------- report ---------------------------------------------
  bool identical = true;
  for (std::size_t i = 0; i < sw_image.size(); ++i) {
    if (sw_image[i] != hw_image[i]) identical = false;
  }
  std::printf("software decode: %9llu cycles (%8.1f us)\n",
              static_cast<unsigned long long>(sw_cycles),
              static_cast<double>(sw_cycles) / 50.0);
  std::printf("OCP decode:      %9llu cycles (%8.1f us)\n",
              static_cast<unsigned long long>(hw_cycles),
              static_cast<double>(hw_cycles) / 50.0);
  std::printf("speedup:         %.2fx (paper Table I: 1.67x per block "
              "under Linux)\n\n",
              static_cast<double>(sw_cycles) / static_cast<double>(hw_cycles));
  std::printf("HW/SW outputs bit-identical: %s\n",
              identical ? "yes (shared fixed-point datapath)" : "NO");
  std::printf("reconstruction PSNR: %.1f dB (JPEG quantization loss only)\n",
              psnr(reference, hw_image));
  return identical ? 0 : 1;
}
