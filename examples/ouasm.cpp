// ouasm — command-line microcode tool: assemble, disassemble, and verify
// Ouessant programs. The kind of utility an open-source release of the
// paper's project ships for firmware authors.
//
//   ouasm asm <file.s>     assemble, print the binary image (hex words)
//   ouasm dis <file.hex>   disassemble a hex word list
//   ouasm check <file.s>   assemble + static verification report
//   ouasm demo             print the paper's Fig. 4 program
//   ouasm rtl <core>       emit the VHDL shell + OCP wrapper for a preset
//                          core (idct | dft256 | fir16 | cfir | pass48)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "ouessant/assembler.hpp"
#include "ouessant/codegen.hpp"
#include "ouessant/rtlgen.hpp"
#include "rac/configurable_fir.hpp"
#include "rac/dft.hpp"
#include "rac/fir.hpp"
#include "rac/idct.hpp"
#include "rac/passthrough.hpp"

using namespace ouessant;

namespace {

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    throw SimError(std::string("cannot open ") + path);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<u32> parse_hex_words(const std::string& text) {
  std::vector<u32> words;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) {
    words.push_back(static_cast<u32>(std::stoul(tok, nullptr, 16)));
  }
  return words;
}

int usage() {
  std::fprintf(stderr,
               "usage: ouasm asm <file.s> | dis <file.hex> | check <file.s> "
               "| demo | rtl <core>\n");
  return 2;
}

int emit_rtl(const std::string& which) {
  sim::Kernel kernel;  // models are introspected, never ticked
  std::unique_ptr<core::Rac> rac;
  if (which == "idct") {
    rac = std::make_unique<rac::IdctRac>(kernel, which);
  } else if (which == "dft256") {
    rac = std::make_unique<rac::DftRac>(kernel, which,
                                        rac::DftRacConfig{.points = 256});
  } else if (which == "fir16") {
    rac = std::make_unique<rac::FirRac>(
        kernel, which, std::vector<i32>(16, 1 << 12), 256);
  } else if (which == "cfir") {
    rac = std::make_unique<rac::ConfigurableFirRac>(kernel, which, 16, 256);
  } else if (which == "pass48") {
    rac = std::make_unique<rac::PassthroughRac>(kernel, which, 32, 48);
  } else {
    std::fprintf(stderr, "ouasm: unknown core '%s'\n", which.c_str());
    return 2;
  }
  const auto spec = core::rtlgen::spec_from_rac(*rac, which);
  std::printf("%s\n%s\n%s\n%s",
              core::rtlgen::generate_width_fifo_package().c_str(),
              core::rtlgen::generate_rac_entity(spec).c_str(),
              core::rtlgen::generate_ocp_wrapper(spec).c_str(),
              core::rtlgen::generate_instantiation(spec).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "demo") {
      const core::Program p = core::figure4_program();
      std::printf("// paper Fig. 4: 256-pt DFT microcode\n%s",
                  p.listing().c_str());
      std::printf("// binary image:\n");
      for (const u32 w : p.image()) std::printf("%08x\n", w);
      return 0;
    }
    if (argc < 3) return usage();
    if (cmd == "rtl") return emit_rtl(argv[2]);
    if (cmd == "asm") {
      const core::Program p = core::assemble(read_file(argv[2]));
      for (const u32 w : p.image()) std::printf("%08x\n", w);
      return 0;
    }
    if (cmd == "dis") {
      std::printf("%s",
                  core::disassemble(parse_hex_words(read_file(argv[2])))
                      .c_str());
      return 0;
    }
    if (cmd == "check") {
      const core::Program p = core::assemble(read_file(argv[2]));
      const auto result = core::verify(p);
      if (result.ok) {
        std::printf("OK: %zu instructions, all static checks pass\n",
                    p.size());
        return 0;
      }
      std::printf("FAIL:\n%s", result.to_string().c_str());
      return 1;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ouasm: %s\n", e.what());
    return 1;
  }
}
