// Processor-free signal conditioning — the paper's "Standalone operation
// is also studied, to provide control for processor-free designs".
//
// There is NO CPU in this SoC. The OCP's configuration registers are
// strap-initialised (preconfigure), the microcode lives in a boot ROM,
// and autostart+auto-restart keep the pipeline free-running: every pass
// moves a window of sensor samples through a low-pass FIR and writes the
// conditioned block for a downstream consumer. A DMA-less sensor frontend
// (a tiny bus master component) deposits fresh samples concurrently.
#include <cmath>
#include <cstdio>

#include "ouessant/codegen.hpp"
#include "platform/report.hpp"
#include "rac/fir.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"

using namespace ouessant;

namespace {

constexpr Addr kRomBase = 0x0000'0000;
constexpr Addr kSamples = 0x4000'0000;
constexpr Addr kFiltered = 0x4001'0000;
constexpr u32 kWindow = 64;

/// Sensor frontend: a bus master that writes one fresh sample per fixed
/// interval into the circular sample window (models an ADC interface).
class SensorFrontend : public sim::Component {
 public:
  SensorFrontend(sim::Kernel& kernel, bus::BusMasterPort& port)
      : sim::Component(kernel, "sensor"), port_(port) {}

  void tick_compute() override {
    if (port_.busy()) return;
    if (++divider_ < 8) return;  // one sample every 8 cycles
    divider_ = 0;
    const double t = static_cast<double>(n_);
    const double v = 0.4 * std::sin(2.0 * M_PI * t / 37.0) +
                     0.15 * (rng_.uniform() - 0.5);
    const util::Q q(16);
    port_.start_write(kSamples + (n_ % kWindow) * 4,
                      {static_cast<u32>(util::to_word(q.from_double(v)))});
    ++n_;
  }

  [[nodiscard]] u64 samples_written() const { return n_; }

 private:
  bus::BusMasterPort& port_;
  util::Rng rng_{99};
  u32 divider_ = 0;
  u64 n_ = 0;
};

}  // namespace

int main() {
  sim::Kernel kernel;
  bus::AhbBus bus(kernel, "ahb");
  mem::Sram sram("sram", 0x4000'0000, 1 << 20);
  bus.connect_slave(sram, 0x4000'0000, 1 << 20);

  // Boot ROM with the free-running microcode.
  const core::Program prog = core::build_stream_program(
      {.in_words = kWindow, .out_words = kWindow, .burst = kWindow});
  mem::Rom rom("boot_rom", kRomBase, prog.image());
  bus.connect_slave(rom, kRomBase, rom.size_bytes());

  // The conditioning filter.
  const util::Q q(16);
  std::vector<i32> taps;
  for (int n = 0; n < 8; ++n) taps.push_back(q.from_double(1.0 / 8.0));
  rac::FirRac fir(kernel, "boxcar8", taps, kWindow);

  core::Ocp ocp(kernel, "ocp", bus, fir, {.reg_base = 0x8000'0000});
  ocp.iface().preconfigure({kRomBase, kSamples, kFiltered, 0, 0, 0, 0, 0},
                           static_cast<u32>(prog.size()));
  ocp.iface().set_standalone(/*autostart=*/true, /*auto_restart=*/true);

  // The concurrent sensor frontend (lower priority than the OCP).
  auto& sensor_port = bus.connect_master("sensor", /*priority=*/5);
  SensorFrontend sensor(kernel, sensor_port);

  std::printf("processor-free SoC: ROM microcode, strap-configured OCP, "
              "free-running FIR\n\n");
  const u64 horizon = 20'000;
  kernel.run(horizon);

  std::printf("after %llu cycles:\n",
              static_cast<unsigned long long>(horizon));
  std::printf("  sensor samples written: %llu\n",
              static_cast<unsigned long long>(sensor.samples_written()));
  std::printf("  FIR passes completed:   %llu (one per %u-sample window)\n",
              static_cast<unsigned long long>(fir.completed_ops()), kWindow);
  std::printf("  controller runs:        %llu, instructions: %llu\n",
              static_cast<unsigned long long>(ocp.controller().stats().runs),
              static_cast<unsigned long long>(
                  ocp.controller().stats().instructions));

  // Show a slice of the conditioned output.
  std::printf("\nfiltered window head: ");
  for (u32 i = 0; i < 6; ++i) {
    std::printf("%+.3f ", q.to_double(util::from_word(
                              sram.peek(kFiltered + i * 4))));
  }
  std::printf("\n\nno CPU was constructed; the bus log shows only the OCP "
              "and the sensor.\n");
  return fir.completed_ops() > 10 ? 0 : 1;
}
