// Two coprocessors on one bus — the MPSoC scenario where the paper argues
// Ouessant beats the Molen-style tight coupling ("it requires one
// accelerator per processor, making it inefficient in MPSoC").
//
// The SoC carries two independent OCPs: a 16-tap low-pass FIR and a
// 256-point DFT. The application filters a noisy signal on OCP0 and
// transforms both the raw and the filtered signal on OCP1, launching the
// coprocessors concurrently where the dataflow allows. One CPU, one bus,
// two accelerators — no processor-port surgery required.
#include <cmath>
#include <cstdio>
#include <vector>

#include "drv/session.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "rac/fir.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"
#include "util/transforms.hpp"

using namespace ouessant;

namespace {

constexpr u32 kN = 256;

/// Windowed-sinc low-pass at ~0.15 of the sample rate, 16 taps, Q16.16.
std::vector<i32> lowpass_taps() {
  const util::Q q(16);
  std::vector<i32> taps;
  const int taps_n = 16;
  const double fc = 0.15;
  for (int n = 0; n < taps_n; ++n) {
    const double m = n - (taps_n - 1) / 2.0;
    const double sinc =
        (std::abs(m) < 1e-9) ? 2.0 * fc
                             : std::sin(2.0 * M_PI * fc * m) / (M_PI * m);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * M_PI * n / (taps_n - 1));
    taps.push_back(q.from_double(sinc * hamming));
  }
  return taps;
}

double band_energy(const std::vector<u32>& spectrum, u32 from, u32 to) {
  const util::Q q(util::kFftFrac);
  double e = 0;
  for (u32 k = from; k < to; ++k) {
    const double re = q.to_double(util::from_word(spectrum[2 * k]));
    const double im = q.to_double(util::from_word(spectrum[2 * k + 1]));
    e += re * re + im * im;
  }
  return e;
}

}  // namespace

int main() {
  std::printf("two OCPs on one AHB: FIR low-pass (ocp0) + 256-pt DFT "
              "(ocp1)\n\n");

  platform::Soc soc;
  rac::FirRac fir(soc.kernel(), "fir16", lowpass_taps(), kN);
  rac::DftRac dft(soc.kernel(), "dft256", {.points = kN});
  core::Ocp& ocp_fir = soc.add_ocp(fir);
  core::Ocp& ocp_dft = soc.add_ocp(dft);

  // Memory layout: raw signal, filtered signal, two spectra.
  constexpr Addr kRaw = 0x4001'0000;
  constexpr Addr kFiltered = 0x4002'0000;
  constexpr Addr kSpecRaw = 0x4003'0000;
  constexpr Addr kSpecFiltered = 0x4004'0000;

  // Signal: tone at bin 12 (in the passband) + heavy high-band noise.
  const util::Q q(util::kFftFrac);
  util::Rng rng(42);
  std::vector<u32> raw(kN);
  std::vector<u32> raw_cplx(2 * kN);
  for (u32 i = 0; i < kN; ++i) {
    const double t = static_cast<double>(i);
    const double v = 0.30 * std::cos(2.0 * M_PI * 12.0 * t / kN) +
                     0.20 * (rng.uniform() - 0.5) +
                     0.15 * std::cos(2.0 * M_PI * 100.0 * t / kN);
    raw[i] = util::to_word(q.from_double(v));
  }

  drv::OcpSession fir_session(soc.cpu(), soc.sram(), ocp_fir,
                              {.prog_base = 0x4000'0000, .in_base = kRaw,
                               .out_base = kFiltered, .in_words = kN,
                               .out_words = kN});
  fir_session.install(core::build_stream_program(
      {.in_words = kN, .out_words = kN, .burst = 64, .overlap = true}));

  drv::OcpSession dft_session(soc.cpu(), soc.sram(), ocp_dft,
                              {.prog_base = 0x4000'1000, .in_base = kRaw,
                               .out_base = kSpecRaw, .in_words = 2 * kN,
                               .out_words = 2 * kN});
  dft_session.install(core::build_stream_program(
      {.in_words = 2 * kN, .out_words = 2 * kN, .burst = 64,
       .overlap = true}));

  soc.sram().load(kRaw, raw);

  const Cycle t0 = soc.kernel().now();

  // Phase 1 (concurrent): FIR filters the raw signal while the DFT
  // transforms... the raw signal too. Both masters share the AHB.
  // The DFT reads the complex staging buffer; build it first.
  for (u32 i = 0; i < kN; ++i) {
    raw_cplx[2 * i] = raw[i];
    raw_cplx[2 * i + 1] = util::to_word(q.from_double(0.0));
  }
  soc.sram().load(kRaw, raw);  // FIR input: real words
  // Stage the complex copy where the DFT session reads it. Reuse the
  // filtered buffer area + offset? No: give the DFT its own input bank.
  constexpr Addr kRawCplx = 0x4005'0000;
  soc.sram().load(kRawCplx, raw_cplx);
  dft_session.driver().set_bank(1, kRawCplx);

  fir_session.driver().enable_irq(true);
  dft_session.driver().enable_irq(true);
  fir_session.start_async();
  dft_session.start_async();
  fir_session.driver().wait_done_irq();
  dft_session.driver().wait_done_irq();
  const Cycle t1 = soc.kernel().now();

  // Phase 2: spectrum of the filtered signal.
  std::vector<u32> filt_cplx(2 * kN);
  const auto filtered = soc.sram().dump(kFiltered, kN);
  for (u32 i = 0; i < kN; ++i) {
    filt_cplx[2 * i] = filtered[i];
    filt_cplx[2 * i + 1] = util::to_word(q.from_double(0.0));
  }
  soc.sram().load(kRawCplx, filt_cplx);
  dft_session.driver().set_bank(2, kSpecFiltered);
  dft_session.start_async();
  dft_session.driver().wait_done_irq();
  const Cycle t2 = soc.kernel().now();

  const auto spec_raw = soc.sram().dump(kSpecRaw, 2 * kN);
  const auto spec_filt = soc.sram().dump(kSpecFiltered, 2 * kN);

  const double raw_low = band_energy(spec_raw, 1, 40);
  const double raw_high = band_energy(spec_raw, 80, 128);
  const double filt_low = band_energy(spec_filt, 1, 40);
  const double filt_high = band_energy(spec_filt, 80, 128);

  std::printf("band energy        %12s %12s\n", "low(1-40)", "high(80-128)");
  std::printf("raw spectrum       %12.4f %12.4f\n", raw_low, raw_high);
  std::printf("filtered spectrum  %12.4f %12.4f\n", filt_low, filt_high);
  std::printf("\nhigh-band rejection: %.1f dB\n",
              10.0 * std::log10(raw_high / (filt_high + 1e-12)));
  std::printf("low band kept:       %.1f%%\n", 100.0 * filt_low / raw_low);

  std::printf("\nphase 1 (FIR || DFT, shared bus): %llu cycles\n",
              static_cast<unsigned long long>(t1 - t0));
  std::printf("phase 2 (DFT of filtered):        %llu cycles\n",
              static_cast<unsigned long long>(t2 - t1));
  std::printf("\nboth coprocessors ran as ordinary bus peripherals — no "
              "per-CPU\ncoupling, which is exactly the Ouessant-vs-Molen "
              "argument.\n");
  return 0;
}
