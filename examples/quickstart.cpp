// Quickstart: the smallest complete Ouessant application.
//
// Builds the reference SoC (Leon3-class CPU + SRAM on an AHB bus), drops
// in an OCP wrapping a tiny gain accelerator, writes the microcode in the
// paper's assembler syntax, runs one block and prints what happened.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "drv/session.hpp"
#include "ouessant/assembler.hpp"
#include "platform/soc.hpp"
#include "rac/passthrough.hpp"
#include "util/fixed.hpp"

using namespace ouessant;

int main() {
  // 1. The SoC: CPU + 16 MB SRAM on an AHB bus @ 50 MHz.
  platform::Soc soc;

  // 2. The accelerator: multiply each word by 2.5 (Q16.16 fixed point).
  const util::Q q(16);
  rac::ScaleRac gain(soc.kernel(), "gain", /*words=*/8,
                     q.from_double(2.5));

  // 3. Wrap it in an Ouessant coprocessor: this allocates the bus master
  //    port, maps the 10 config registers, and builds the FIFOs.
  core::Ocp& ocp = soc.add_ocp(gain);

  // 4. Microcode, straight from the assembler (paper Fig. 4 syntax).
  //    Bank 0 holds the program, bank 1 the input, bank 2 the output.
  const core::Program prog = core::assemble(
      "// move 8 words to the accelerator, run it, move 8 words back\n"
      "mvtc BANK1,0,DMA8,FIFO0\n"
      "exec\n"
      "mvfc BANK2,0,DMA8,FIFO0\n"
      "eop\n");
  std::printf("microcode:\n%s\n", prog.listing().c_str());

  // 5. A session binds memory layout + program + driver.
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = 0x4000'0000,
                           .in_base = 0x4001'0000,
                           .out_base = 0x4002'0000,
                           .in_words = 8,
                           .out_words = 8});
  session.install(prog);

  // 6. Stage input data: 1.0, 2.0, ... 8.0 in Q16.16.
  std::vector<u32> input(8);
  for (u32 i = 0; i < 8; ++i) {
    input[i] = util::to_word(q.from_double(static_cast<double>(i + 1)));
  }
  session.put_input(input);

  // 7. Run (start, poll the D bit, acknowledge) and read back.
  const u64 cycles = session.run_poll();
  const auto output = session.get_output();

  std::printf("in   -> out   (x2.5 on the coprocessor)\n");
  for (u32 i = 0; i < 8; ++i) {
    std::printf("%4.1f -> %5.1f\n", q.to_double(util::from_word(input[i])),
                q.to_double(util::from_word(output[i])));
  }
  std::printf("\ninvocation took %llu cycles (%.2f us @ 50 MHz)\n",
              static_cast<unsigned long long>(cycles), soc.us(cycles));
  const auto& stats = ocp.controller().stats();
  std::printf("controller: %llu instructions, %llu words to RAC, %llu "
              "words from RAC\n",
              static_cast<unsigned long long>(stats.instructions),
              static_cast<unsigned long long>(stats.words_to_rac),
              static_cast<unsigned long long>(stats.words_from_rac));
  return 0;
}
