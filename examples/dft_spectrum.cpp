// Spectrum analyzer with the 256-point DFT coprocessor — the paper's
// second application (the Spiral iterative DFT RAC).
//
// A multi-tone test signal is transformed three ways:
//   * software double-precision DFT on the FPU-less GPP (the paper's SW
//     baseline, ~600k cycles),
//   * the OCP-wrapped DFT RAC under the baremetal driver,
//   * the OCP under the Linux (mmap) driver — the paper's headline 85x.
// The demo also exercises the paper's concurrency point: while the OCP
// computes, the GPP processes another task.
#include <cmath>
#include <cstdio>
#include <vector>

#include "cpu/sw_kernels.hpp"
#include "drv/linux_env.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "util/fixed.hpp"
#include "util/transforms.hpp"

using namespace ouessant;

namespace {

constexpr u32 kN = 256;
constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;

/// Tones at bins 17 and 63 plus a weak one at 150.
std::vector<u32> make_signal() {
  const util::Q q(util::kFftFrac);
  std::vector<u32> words(2 * kN);
  for (u32 i = 0; i < kN; ++i) {
    const double t = static_cast<double>(i);
    const double v = 0.30 * std::cos(2.0 * M_PI * 17.0 * t / kN) +
                     0.20 * std::cos(2.0 * M_PI * 63.0 * t / kN) +
                     0.05 * std::cos(2.0 * M_PI * 150.0 * t / kN);
    words[2 * i] = util::to_word(q.from_double(v));
    words[2 * i + 1] = util::to_word(q.from_double(0.0));
  }
  return words;
}

std::vector<double> magnitudes(const std::vector<u32>& out) {
  const util::Q q(util::kFftFrac);
  std::vector<double> mag(kN);
  for (u32 k = 0; k < kN; ++k) {
    mag[k] = std::hypot(q.to_double(util::from_word(out[2 * k])),
                        q.to_double(util::from_word(out[2 * k + 1])));
  }
  return mag;
}

void print_peaks(const char* label, const std::vector<double>& mag) {
  std::printf("%s peaks:", label);
  for (u32 k = 1; k + 1 < kN / 2; ++k) {
    if (mag[k] > 0.02 && mag[k] >= mag[k - 1] && mag[k] >= mag[k + 1]) {
      std::printf("  bin %u (%.3f)", k, mag[k]);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("256-point spectrum analysis (tones at bins 17, 63, 150)\n\n");
  const auto signal = make_signal();

  // ---------------- software (soft-float double) -----------------------
  u64 sw_cycles = 0;
  std::vector<double> sw_mag;
  {
    platform::Soc soc;
    soc.sram().load(kIn, signal);
    sw_cycles = cpu::sw::sw_dft_softfloat(soc.cpu(), soc.sram(), kIn, kOut,
                                          kN);
    sw_mag = magnitudes(soc.sram().dump(kOut, 2 * kN));
  }

  // ---------------- OCP, baremetal and Linux ---------------------------
  u64 hw_bm_cycles = 0;
  u64 hw_lx_cycles = 0;
  u64 overlap_total = 0;
  std::vector<double> hw_mag;
  {
    platform::Soc soc;
    rac::DftRac dft(soc.kernel(), "dft", {.points = kN});
    core::Ocp& ocp = soc.add_ocp(dft);
    drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                            {.prog_base = kProg, .in_base = kIn,
                             .out_base = kOut, .in_words = 2 * kN,
                             .out_words = 2 * kN});
    session.install(core::figure4_program());
    session.put_input(signal);
    hw_bm_cycles = session.run_irq();
    hw_mag = magnitudes(session.get_output());

    drv::LinuxEnv linux_env;
    session.put_input(signal);
    hw_lx_cycles = linux_env.invoke(session, drv::XferMode::kMmap);

    // Concurrency: launch, do 3000 cycles of unrelated CPU work, collect.
    session.put_input(signal);
    session.driver().enable_irq(true);
    const Cycle t0 = soc.kernel().now();
    session.start_async();
    soc.cpu().spend(3000);  // the GPP "processes other tasks"
    session.driver().wait_done_irq();
    overlap_total = soc.kernel().now() - t0;
  }

  print_peaks("software", sw_mag);
  print_peaks("OCP     ", hw_mag);

  std::printf("\n%-36s %10s\n", "path", "cycles");
  std::printf("%-36s %10llu\n", "software DFT (soft-float double)",
              static_cast<unsigned long long>(sw_cycles));
  std::printf("%-36s %10llu\n", "OCP, baremetal driver",
              static_cast<unsigned long long>(hw_bm_cycles));
  std::printf("%-36s %10llu\n", "OCP, Linux mmap driver",
              static_cast<unsigned long long>(hw_lx_cycles));
  std::printf("\ngain (Linux, the paper's metric): %.0fx  (paper: 85x)\n",
              static_cast<double>(sw_cycles) /
                  static_cast<double>(hw_lx_cycles));
  std::printf("\nconcurrency: DFT + 3000 cycles of CPU work finished in "
              "%llu cycles\n(sequential would be %llu) — the GPP really "
              "runs in parallel with the OCP.\n",
              static_cast<unsigned long long>(overlap_total),
              static_cast<unsigned long long>(hw_bm_cycles + 3000));
  return 0;
}
