// soc_sim — scenario runner: assemble a full SoC from command-line
// options, run one accelerated workload, and print timing, utilization,
// and resource reports. The "one binary to poke at everything" tool an
// open-source release ships.
//
// Built on the experiment layer: each block invocation fills one
// exp::Result row, the block table is rendered by exp::render_table, and
// --json persists the rows (plus the SoC utilization snapshot) in the
// same ouessant.sweep.v1 schema the bench driver writes.
//
//   soc_sim [--rac idct|dft256|fir16|pass] [--bus ahb|axi4|axilite]
//           [--env baremetal|linux] [--burst N] [--loop] [--blocks N]
//           [--trace out.vcd] [--resources] [--json out.json]
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "drv/linux_env.hpp"
#include "exp/result.hpp"
#include "ouessant/codegen.hpp"
#include "platform/report.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "rac/fir.hpp"
#include "rac/idct.hpp"
#include "rac/passthrough.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"

using namespace ouessant;

namespace {

struct Options {
  std::string rac = "idct";
  std::string bus = "ahb";
  std::string env = "baremetal";
  u32 burst = 64;
  bool use_loop = false;
  u32 blocks = 4;
  std::string trace;
  bool resources = false;
  std::string json;
};

int usage() {
  std::fprintf(stderr,
               "usage: soc_sim [--rac idct|dft256|fir16|pass] "
               "[--bus ahb|axi4|axilite]\n"
               "               [--env baremetal|linux] [--burst N] [--loop] "
               "[--blocks N]\n"
               "               [--trace out.vcd] [--resources] "
               "[--json out.json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw ConfigError("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--rac") opt.rac = next();
      else if (arg == "--bus") opt.bus = next();
      else if (arg == "--env") opt.env = next();
      else if (arg == "--burst") opt.burst = static_cast<u32>(std::stoul(next()));
      else if (arg == "--loop") opt.use_loop = true;
      else if (arg == "--blocks") opt.blocks = static_cast<u32>(std::stoul(next()));
      else if (arg == "--trace") opt.trace = next();
      else if (arg == "--resources") opt.resources = true;
      else if (arg == "--json") opt.json = next();
      else return usage();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "soc_sim: %s\n", e.what());
      return 2;
    }
  }

  platform::SocConfig cfg;
  if (opt.bus == "ahb") cfg.bus = platform::BusKind::kAhb;
  else if (opt.bus == "axi4") cfg.bus = platform::BusKind::kAxi4;
  else if (opt.bus == "axilite") cfg.bus = platform::BusKind::kAxiLite;
  else return usage();

  platform::Soc soc(cfg);

  std::unique_ptr<core::Rac> rac;
  u32 words = 64;
  if (opt.rac == "idct") {
    rac = std::make_unique<rac::IdctRac>(soc.kernel(), "idct");
    words = 64;
  } else if (opt.rac == "dft256") {
    rac = std::make_unique<rac::DftRac>(soc.kernel(), "dft256",
                                        rac::DftRacConfig{.points = 256});
    words = 512;
  } else if (opt.rac == "fir16") {
    rac = std::make_unique<rac::FirRac>(
        soc.kernel(), "fir16", std::vector<i32>(16, i32{1} << 12), 256);
    words = 256;
  } else if (opt.rac == "pass") {
    rac = std::make_unique<rac::PassthroughRac>(soc.kernel(), "pass", 256, 32);
    words = 256;
  } else {
    return usage();
  }

  core::Ocp& ocp = soc.add_ocp(*rac);

  std::unique_ptr<sim::VcdTrace> trace;
  if (!opt.trace.empty()) {
    trace = std::make_unique<sim::VcdTrace>(soc.kernel(), opt.trace);
    platform::attach_standard_probes(*trace, soc, ocp);
  }

  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = 0x4000'0000,
                           .in_base = 0x4001'0000,
                           .out_base = 0x4002'0000,
                           .in_words = words,
                           .out_words = words});
  const core::Program prog = core::build_stream_program(
      {.in_words = words, .out_words = words,
       .burst = std::min(opt.burst, words), .overlap = true,
       .use_loop = opt.use_loop});
  session.install(prog);
  std::printf("microcode (%zu instructions):\n%s\n", prog.size(),
              prog.listing().c_str());

  util::Rng rng(1);
  drv::LinuxEnv linux_env;
  std::vector<exp::Result> rows;
  u64 total = 0;
  for (u32 b = 0; b < opt.blocks; ++b) {
    std::vector<u32> in(words);
    for (auto& w : in) w = util::to_word(rng.range(-20000, 20000));
    session.put_input(in);
    const u64 cycles = (opt.env == "linux")
                           ? linux_env.invoke(session, drv::XferMode::kMmap)
                           : session.run_irq();
    total += cycles;
    exp::Result row;
    row.scenario = "soc_sim";
    row.experiment = "example";
    row.params.set("block", static_cast<i64>(b));
    row.add_metric("cycles", cycles);
    row.add_metric("us", soc.us(cycles));
    rows.push_back(std::move(row));
  }
  std::fputs(exp::render_table(rows).c_str(), stdout);
  std::printf("\ntotal: %llu cycles for %u block(s), %.2f us\n",
              static_cast<unsigned long long>(total), opt.blocks,
              soc.us(total));

  const auto report = platform::make_report(soc);
  std::printf("\n%s", report.render().c_str());
  if (opt.resources) {
    std::printf("\n%s",
                res::render_report(ocp.full_resource_tree()).c_str());
  }
  if (!opt.json.empty()) {
    exp::Result summary;
    summary.scenario = "soc_sim";
    summary.experiment = "example";
    summary.add_metric("total_cycles", total);
    summary.add_metric("blocks", opt.blocks);
    summary.add_utilization(report);
    rows.push_back(std::move(summary));
    exp::write_json(opt.json, rows,
                    {"\"rac\": \"" + opt.rac + "\"",
                     "\"bus\": \"" + opt.bus + "\"",
                     "\"env\": \"" + opt.env + "\""});
    std::printf("\nresults written to %s\n", opt.json.c_str());
  }
  if (trace) std::printf("\nwaveform written to %s\n", opt.trace.c_str());
  return 0;
}
