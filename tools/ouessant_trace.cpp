// ouessant_trace — inspect the observability artifacts the stack emits.
//
//   ouessant_trace <trace.json>             per-phase breakdown, top-10
//                                           job critical paths and
//                                           hottest microcode PCs
//   ouessant_trace <trace.json> --top 25    widen the top-N listings
//   ouessant_trace <trace.json> --json      the same report as
//                                           ouessant.analysis.v1 JSON
//   ouessant_trace slo <report.json>        render an ouessant.slo.v1
//                                           SLO burn-rate report
//   ouessant_trace flight <dump.json>       summarize a flight-recorder
//                                           dump (trigger + breakdown);
//                                           --top / --json as above
//   ouessant_trace metrics <metrics.json>   ouessant.metrics.v1 column
//                                           registry with units and
//                                           descriptions
//
// Trace and flight files also load in Perfetto / chrome://tracing for
// the visual timeline; this tool is the terminal-side summary.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/analysis.hpp"
#include "obs/sampler.hpp"
#include "obs/slo.hpp"
#include "obs/trace_reader.hpp"

namespace {

using namespace ouessant;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [--top N] [--json]\n"
               "       %s flight <dump.flight.json> [--top N] [--json]\n"
               "       %s slo <report.slo.json>\n"
               "       %s metrics <metrics.json>\n",
               argv0, argv0, argv0, argv0);
}

int run_slo(const std::string& path) {
  const obs::SloReport rep = obs::read_slo_report(path);
  std::printf("%s: %llu shard monitor%s folded\n", path.c_str(),
              static_cast<unsigned long long>(rep.shards),
              rep.shards == 1 ? "" : "s");
  std::printf(
      "windows: long %llu / short %llu cycles, alert when both burn >= "
      "%.3g\n\n",
      static_cast<unsigned long long>(rep.long_window),
      static_cast<unsigned long long>(rep.short_window), rep.burn_threshold);
  std::printf("%-12s %12s %8s %10s %12s %7s %12s %12s %5s\n", "class",
              "slo_cycles", "target", "jobs", "availability", "alerts",
              "first_alert", "worst_burn", "met");
  for (const obs::SloClassReport& c : rep.classes) {
    std::printf("%-12s %12llu %7.4f%% %10llu %11.4f%% %7llu %12llu %12.3f "
                "%5s\n",
                c.name.c_str(),
                static_cast<unsigned long long>(c.latency_cycles),
                100.0 * c.target, static_cast<unsigned long long>(c.jobs),
                100.0 * c.availability(),
                static_cast<unsigned long long>(c.alerts),
                static_cast<unsigned long long>(c.first_alert), c.worst_burn,
                c.met() ? "yes" : "NO");
  }
  return 0;
}

int run_metrics(const std::string& path) {
  const obs::MetricsSampler::File file = obs::read_metrics(path);
  std::printf("%s: %zu columns, %zu samples every %llu cycles\n\n",
              path.c_str(), file.columns.size(), file.samples.size(),
              static_cast<unsigned long long>(file.period));
  std::printf("%-32s %-10s %s\n", "column", "unit", "description");
  for (std::size_t i = 0; i < file.columns.size(); ++i) {
    std::printf("%-32s %-10s %s\n", file.columns[i].c_str(),
                file.units[i].empty() ? "-" : file.units[i].c_str(),
                file.descriptions[i].c_str());
  }
  return 0;
}

int run_trace(const std::string& path, std::size_t top_n, bool json,
              bool flight) {
  const obs::ParsedTrace trace = obs::read_trace(path);
  if (json) {
    std::fputs(obs::render_json(trace, top_n).c_str(), stdout);
    return 0;
  }
  std::printf("%s: %zu events on %zu tracks\n", path.c_str(),
              trace.events.size(), trace.track_names.size());
  if (flight) {
    // A flight dump is an ordinary trace plus the trigger instant the
    // fault path emitted; surface when and why the ring was frozen.
    bool triggered = false;
    for (const obs::ParsedEvent& e : trace.events) {
      if (e.ph != 'i' || e.name != "flight_trigger") continue;
      const auto it = e.args.find("reason");
      std::printf("flight trigger at cycle %llu: %s\n",
                  static_cast<unsigned long long>(e.ts),
                  it != e.args.end() && it->second.is_str
                      ? it->second.s.c_str()
                      : "(no reason recorded)");
      triggered = true;
    }
    if (!triggered) {
      std::printf("no flight trigger recorded (ring dumped manually)\n");
    }
  }
  std::printf("\n");
  std::fputs(obs::render_report(trace, top_n).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "trace";
  std::string path;
  std::size_t top_n = 10;
  bool json = false;
  int i = 1;
  if (i < argc) {
    const std::string arg = argv[i];
    if (arg == "slo" || arg == "flight" || arg == "metrics") {
      mode = arg;
      ++i;
    }
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1) {
        usage(argv[0]);
        return 2;
      }
      top_n = static_cast<std::size_t>(v);
    } else if (arg == "--json") {
      json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (path.empty() || (json && (mode == "slo" || mode == "metrics"))) {
    usage(argv[0]);
    return 2;
  }

  try {
    if (mode == "slo") return run_slo(path);
    if (mode == "metrics") return run_metrics(path);
    return run_trace(path, top_n, json, mode == "flight");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ouessant_trace: %s\n", e.what());
    return 1;
  }
}
