// ouessant_trace — inspect a Chrome trace-event JSON written by
// `ouessant_bench --trace-events` (or any EventTracer::write_json file).
//
//   ouessant_trace <trace.json>            per-phase breakdown, top-10
//                                          job critical paths and hottest
//                                          microcode PCs
//   ouessant_trace <trace.json> --top 25   widen the top-N listings
//
// The same file loads in Perfetto / chrome://tracing for the visual
// timeline; this tool is the terminal-side summary.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/analysis.hpp"
#include "obs/trace_reader.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <trace.json> [--top N]\n", argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top_n = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1) {
        usage(argv[0]);
        return 2;
      }
      top_n = static_cast<std::size_t>(v);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    const ouessant::obs::ParsedTrace trace =
        ouessant::obs::read_trace(path);
    std::printf("%s: %zu events on %zu tracks\n\n", path.c_str(),
                trace.events.size(), trace.track_names.size());
    std::fputs(ouessant::obs::render_report(trace, top_n).c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ouessant_trace: %s\n", e.what());
    return 1;
  }
}
