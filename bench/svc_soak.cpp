// Offload-service soak driver for the tier-1 TSan job.
//
// Runs a closed-loop workload (default 10k jobs total) against 4-OCP
// OffloadService instances, sharded across worker threads: each thread
// owns a fully independent service (its own Soc, kernel, OCPs), exactly
// like the parallel sweep engine isolates grid points. Under TSan any
// mutable state accidentally shared between "isolated" simulations is a
// reported race; under any build a lost job, a rejected job (closed
// loop never overruns the queue) or a verification mismatch fails the
// process.
//
// Usage: svc_soak [--jobs N] [--total J]
//   --jobs N    worker threads / service shards (default 4)
//   --total J   jobs summed across all shards (default 10000)
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.hpp"

namespace {

struct ShardResult {
  ouessant::u64 jobs = 0;
  ouessant::u64 completed = 0;
  ouessant::u64 rejected = 0;
  ouessant::u64 makespan = 0;
  std::string error;
};

void run_shard(unsigned shard, ouessant::u32 jobs, ShardResult& out) {
  using namespace ouessant;
  try {
    svc::ServiceConfig cfg;
    cfg.ocps = {{.kind = svc::JobKind::kIdct, .max_batch = 4},
                {.kind = svc::JobKind::kDft, .max_batch = 2},
                {.kind = svc::JobKind::kFir, .max_batch = 2},
                {.kind = svc::JobKind::kJpegBlock, .max_batch = 2}};
    cfg.queue_depth = 128;
    svc::OffloadService service(cfg);

    svc::WorkloadConfig wl;
    wl.mode = svc::LoadMode::kClosedLoop;
    wl.jobs = jobs;
    wl.clients = 16;
    wl.kinds = {svc::JobKind::kIdct, svc::JobKind::kDft, svc::JobKind::kFir,
                svc::JobKind::kJpegBlock};
    wl.high_fraction = 0.25;
    wl.seed = svc::kDefaultServiceSeed + shard;

    const svc::ServiceReport rep = service.run(wl);
    out.jobs = rep.jobs;
    out.completed = rep.completed;
    out.rejected = rep.rejected;
    out.makespan = rep.makespan();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
}

}  // namespace

int main(int argc, char** argv) {
  unsigned shards = 4;
  ouessant::u64 total = 10'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      shards = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--total" && i + 1 < argc) {
      total = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::cerr << "usage: svc_soak [--jobs N] [--total J]\n";
      return 2;
    }
  }
  if (shards == 0 || total == 0) {
    std::cerr << "svc_soak: --jobs and --total must be >= 1\n";
    return 2;
  }

  std::vector<ShardResult> results(shards);
  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    // Spread the total over the shards, first shards taking the excess.
    const ouessant::u64 jobs = total / shards + (s < total % shards ? 1 : 0);
    threads.emplace_back(run_shard, s, static_cast<ouessant::u32>(jobs),
                         std::ref(results[s]));
  }
  for (auto& t : threads) t.join();

  bool ok = true;
  ouessant::u64 completed = 0;
  for (unsigned s = 0; s < shards; ++s) {
    const ShardResult& r = results[s];
    if (!r.error.empty()) {
      std::cerr << "shard " << s << " FAILED: " << r.error << "\n";
      ok = false;
      continue;
    }
    if (r.completed != r.jobs || r.rejected != 0) {
      std::cerr << "shard " << s << " lost work: completed=" << r.completed
                << " rejected=" << r.rejected << " of " << r.jobs << "\n";
      ok = false;
    }
    completed += r.completed;
    std::cout << "shard " << s << ": " << r.completed << " jobs in "
              << r.makespan << " cycles\n";
  }
  if (!ok) return 1;
  std::cout << "svc_soak OK: " << completed << " jobs across " << shards
            << " service shards\n";
  return 0;
}
