// SVC (offload service layer) — the src/svc/ scheduler under load.
//
// Five scenarios exercise the service end to end, each on a fresh SoC
// per grid point (the sweep's isolation rule):
//   serve_single_ocp  one IDCT worker under rising open-loop load: the
//                     classic queueing curve (wait_p95 grows as the gap
//                     between arrivals approaches the service time).
//   serve_multi_ocp   same offered load fanned over 1/2/4 IDCT workers:
//                     throughput should scale with worker count until
//                     the shared AHB saturates (bus_util_pct tells).
//   serve_batching    closed-loop population over one worker with the
//                     coalescing factor K swept: per-job end-to-end
//                     latency drops as launch/ack overhead amortizes.
//   serve_overload    a bounded queue offered ~5x its drain rate: the
//                     service must reject (counted) rather than livelock.
//   serve_mixed       all four job kinds, one worker each, with a
//                     high-priority share — the MPSoC service picture.
//
// All five are seeded (run_ctx) scenarios: the RunContext seed drives
// every random decision, so identical seeds give bit-identical
// histograms, and --trace writes queue-depth / per-OCP-busy VCDs.
#include "scenarios.hpp"

#include <memory>
#include <utility>

#include "obs/collect.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "snap/snapshot.hpp"
#include "svc/service.hpp"

namespace ouessant::scenarios {
namespace {

/// Sampling period for --trace-events metrics time-series: fine enough
/// to see queue oscillation, coarse enough to keep files small.
constexpr u64 kMetricsPeriod = 64;

/// Build the service, optionally attach the VCD probes and/or the event
/// tracer + metrics sampler, serve the workload, and flatten report +
/// bus utilization into the result. Every run closes with a CycleLedger
/// proof that per-component cycle attribution sums to wall cycles.
void serve_point(svc::ServiceConfig cfg, svc::WorkloadConfig wl,
                 const exp::RunContext& ctx, exp::Result& result) {
  svc::OffloadService service(std::move(cfg));
  std::unique_ptr<sim::VcdTrace> trace;
  if (!ctx.trace_path.empty()) {
    trace = std::make_unique<sim::VcdTrace>(service.soc().kernel(),
                                            ctx.trace_path, "svc");
    service.attach_trace(*trace);
  }
  std::unique_ptr<obs::EventTracer> tracer;
  std::unique_ptr<obs::MetricsSampler> metrics;
  if (!ctx.trace_events_path.empty()) {
    tracer = std::make_unique<obs::EventTracer>(service.soc().kernel());
    service.attach_tracer(*tracer);
    metrics = std::make_unique<obs::MetricsSampler>(service.soc().kernel(),
                                                    kMetricsPeriod);
    service.attach_metrics(*metrics);
  }
  wl.seed = ctx.seed;
  svc::ServiceReport rep;
  if (!ctx.restore_path.empty()) {
    // Warm boot: resident microcode, IRQ masks and caches come from the
    // snapshot; only this run's counters start at zero. The snapshot
    // must have been taken from the same service configuration
    // (restore validates the fingerprint and throws otherwise).
    service.restore(snap::Snapshot::load_file(ctx.restore_path));
    service.begin(wl, /*warm=*/true);
    while (!service.step()) {
    }
    rep = service.finish();
  } else {
    rep = service.run(wl);
  }
  if (!ctx.snapshot_path.empty()) {
    service.snapshot().save_file(ctx.snapshot_path);
  }
  rep.add_to(result);
  obs::validate_soc_ledger(service.soc());
  if (tracer != nullptr) {
    tracer->write_json(ctx.trace_events_path);
    metrics->write_json(ctx.trace_events_path + ".metrics.json");
    result.add_metric("trace_events", static_cast<u64>(tracer->event_count()));
  }
  const Cycle now = service.soc().kernel().now();
  result.add_metric(
      "bus_util_pct",
      now > 0 ? 100.0 * static_cast<double>(service.soc().bus().busy_cycles()) /
                    static_cast<double>(now)
              : 0.0);
  if (rep.completed + rep.rejected != rep.jobs) {
    result.fail("service lost jobs: completed " +
                std::to_string(rep.completed) + " + rejected " +
                std::to_string(rep.rejected) + " != " +
                std::to_string(rep.jobs));
  }
}

void run_single(const exp::ParamMap& params, const exp::RunContext& ctx,
                exp::Result& result) {
  svc::ServiceConfig cfg;
  cfg.ocps = {svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 1}};
  cfg.queue_depth = 256;
  svc::WorkloadConfig wl;
  wl.jobs = 120;
  wl.mean_gap = params.get_real("mean_gap");
  serve_point(std::move(cfg), wl, ctx, result);
  if (result.metrics.get_int("rejected") != 0) {
    result.fail("unexpected rejection below saturation");
  }
}

void run_multi(const exp::ParamMap& params, const exp::RunContext& ctx,
               exp::Result& result) {
  const u32 n = params.get_u32("ocps");
  svc::ServiceConfig cfg;
  cfg.ocps.clear();
  for (u32 i = 0; i < n; ++i) {
    cfg.ocps.push_back(
        svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 1});
  }
  cfg.queue_depth = 256;
  svc::WorkloadConfig wl;
  wl.jobs = 160;
  wl.mean_gap = 40.0;  // offered well above one worker's drain rate
  serve_point(std::move(cfg), wl, ctx, result);
}

void run_batching(const exp::ParamMap& params, const exp::RunContext& ctx,
                  exp::Result& result) {
  svc::ServiceConfig cfg;
  cfg.ocps = {svc::OcpSpec{.kind = svc::JobKind::kIdct,
                           .max_batch = params.get_u32("batch")}};
  cfg.queue_depth = 64;
  svc::WorkloadConfig wl;
  wl.mode = svc::LoadMode::kClosedLoop;
  wl.jobs = 192;
  wl.clients = 32;
  serve_point(std::move(cfg), wl, ctx, result);
}

void run_overload(const exp::ParamMap& params, const exp::RunContext& ctx,
                  exp::Result& result) {
  svc::ServiceConfig cfg;
  cfg.ocps = {svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 1}};
  cfg.queue_depth = params.get_u32("depth");
  svc::WorkloadConfig wl;
  wl.jobs = 200;
  wl.mean_gap = 60.0;  // ~5x the single worker's drain rate
  serve_point(std::move(cfg), wl, ctx, result);
  if (result.metrics.get_int("rejected") == 0) {
    result.fail("overload produced no rejections (queue unbounded?)");
  }
}

void run_mixed(const exp::ParamMap& params, const exp::RunContext& ctx,
               exp::Result& result) {
  (void)params;
  svc::ServiceConfig cfg;
  cfg.ocps = {svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 2},
              svc::OcpSpec{.kind = svc::JobKind::kDft, .max_batch = 2},
              svc::OcpSpec{.kind = svc::JobKind::kFir, .max_batch = 2},
              svc::OcpSpec{.kind = svc::JobKind::kJpegBlock, .max_batch = 2}};
  cfg.queue_depth = 128;
  svc::WorkloadConfig wl;
  wl.jobs = 160;
  wl.mean_gap = 150.0;
  wl.kinds = {svc::JobKind::kIdct, svc::JobKind::kDft, svc::JobKind::kFir,
              svc::JobKind::kJpegBlock};
  wl.high_fraction = 0.25;
  serve_point(std::move(cfg), wl, ctx, result);
}

}  // namespace

void register_serve(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "serve_single_ocp",
      .experiment = "SVC",
      .title = "one IDCT worker under rising open-loop load",
      .grid = {{.name = "mean_gap", .values = {1200.0, 600.0, 400.0}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_single,
  });
  r.add(exp::ScenarioSpec{
      .name = "serve_multi_ocp",
      .experiment = "SVC",
      .title = "fixed offered load over 1/2/4 IDCT workers on one AHB",
      .grid = {{.name = "ocps", .values = {1, 2, 4}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_multi,
  });
  r.add(exp::ScenarioSpec{
      .name = "serve_batching",
      .experiment = "SVC",
      .title = "closed-loop population, batch factor K swept",
      .grid = {{.name = "batch", .values = {1, 2, 4, 8, 16}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_batching,
  });
  r.add(exp::ScenarioSpec{
      .name = "serve_overload",
      .experiment = "SVC",
      .title = "bounded queue offered ~5x its drain rate: reject, not hang",
      .grid = {{.name = "depth", .values = {16, 64}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_overload,
  });
  r.add(exp::ScenarioSpec{
      .name = "serve_mixed",
      .experiment = "SVC",
      .title = "all four job kinds, one worker each, 25% high priority",
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_mixed,
  });
}

}  // namespace ouessant::scenarios
