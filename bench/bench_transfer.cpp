// E4 — reproduces §V-B's transfer-efficiency analysis: "we have roughly
// 1500 cycles needed for data transfer, and 1024 32-bit words to
// transfer. This means that around 1.5 cycles per word were required."
//
// The scenario measures the OCP moving 1024 words (512 in + 512 out, the
// paper's DFT traffic) through a streaming identity datapath while
// sweeping the mvtc/mvfc burst length and the v1/v2 microcode shape, and
// reports effective cycles/word — exposing both the paper's figure at
// DMA64 and the burst-length design space.
#include "scenarios.hpp"

#include "drv/session.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/fir.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;

void run_point(const exp::ParamMap& params, exp::Result& result) {
  const u32 words = 512;
  const u32 burst = params.get_u32("burst");
  const bool use_loop = params.get_str("isa") == "v2";

  platform::Soc soc;
  // A streaming identity datapath (1-tap unity FIR): one word in, one word
  // out per cycle, fully overlapped with the bus — so the measurement is
  // pure transfer cost, matching how the paper derives its 1.5
  // cycles/word ((4000 - 2485) / 1024).
  rac::FirRac rac(soc.kernel(), "identity", {i32{1} << 16}, words);
  core::Ocp& ocp = soc.add_ocp(rac);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg, .in_base = kIn,
                           .out_base = kOut, .in_words = words,
                           .out_words = words});
  const core::Program prog = core::build_stream_program(
      {.in_words = words, .out_words = words, .burst = burst,
       .overlap = true, .use_loop = use_loop});
  session.install(prog, /*timed_program=*/false);
  util::Rng rng(1);
  std::vector<u32> in(words);
  for (auto& w : in) w = rng.next_u32();
  session.put_input(in);
  const u64 cycles = session.run_irq();
  obs::validate_soc_ledger(soc);
  if (session.get_output() != in) {
    result.fail("data mismatch at burst " + std::to_string(burst));
  }
  result.add_metric("prog_size", prog.size());
  result.add_metric("cycles", cycles);
  result.add_metric("cycles_per_word",
                    static_cast<double>(cycles) / (2.0 * words));
}

}  // namespace

void register_e4_transfer(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e4_transfer",
      .experiment = "E4",
      .title = "transfer efficiency: 1024 words through the OCP, burst sweep",
      .grid = {{.name = "burst",
                .values = {1, 2, 4, 8, 16, 32, 64, 128, 256}},
               {.name = "isa", .values = {"v1", "v2"}}},
      // The v2 loop degenerates when the whole block fits one burst.
      .skip =
          [](const exp::ParamMap& p) {
            return p.get_str("isa") == "v2" && 512 / p.get_u32("burst") <= 1;
          },
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
