// E4 — reproduces §V-B's transfer-efficiency analysis: "we have roughly
// 1500 cycles needed for data transfer, and 1024 32-bit words to
// transfer. This means that around 1.5 cycles per word were required."
//
// The bench measures the OCP moving 1024 words (512 in + 512 out, the
// paper's DFT traffic) through a passthrough RAC while sweeping the
// mvtc/mvfc burst length, and reports effective cycles/word — exposing
// both the paper's figure at DMA64 and the burst-length design space.
#include <cstdio>

#include "drv/session.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/fir.hpp"
#include "util/rng.hpp"

namespace {

using namespace ouessant;

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;

struct Sample {
  u32 burst;
  u64 total_cycles;       ///< whole invocation (start -> done ack)
  u64 program_size;
  double cycles_per_word;
};

Sample measure(u32 burst, bool use_loop) {
  const u32 words = 512;
  platform::Soc soc;
  // A streaming identity datapath (1-tap unity FIR): one word in, one word
  // out per cycle, fully overlapped with the bus — so the measurement is
  // pure transfer cost, matching how the paper derives its 1.5
  // cycles/word ((4000 - 2485) / 1024).
  rac::FirRac rac(soc.kernel(), "identity", {i32{1} << 16}, words);
  core::Ocp& ocp = soc.add_ocp(rac);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg, .in_base = kIn,
                           .out_base = kOut, .in_words = words,
                           .out_words = words});
  const core::Program prog = core::build_stream_program(
      {.in_words = words, .out_words = words, .burst = burst,
       .overlap = true, .use_loop = use_loop});
  session.install(prog, /*timed_program=*/false);
  util::Rng rng(1);
  std::vector<u32> in(words);
  for (auto& w : in) w = rng.next_u32();
  session.put_input(in);
  const u64 cycles = session.run_irq();
  if (session.get_output() != in) {
    std::fprintf(stderr, "DATA MISMATCH at burst %u\n", burst);
  }
  return {.burst = burst,
          .total_cycles = cycles,
          .program_size = prog.size(),
          .cycles_per_word = static_cast<double>(cycles) / (2.0 * words)};
}

}  // namespace

int main() {
  std::printf("E4: transfer efficiency — 1024 words (512 in + 512 out) "
              "through the OCP\n\n");
  std::printf("%-8s %-8s %12s %10s %14s\n", "burst", "loop?", "instrs",
              "cycles", "cycles/word");
  for (const u32 burst : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    for (const bool use_loop : {false, true}) {
      if (use_loop && 512 / burst <= 1) continue;
      const Sample s = measure(burst, use_loop);
      std::printf("%-8u %-8s %12llu %10llu %14.3f\n", s.burst,
                  use_loop ? "v2" : "v1",
                  static_cast<unsigned long long>(s.program_size),
                  static_cast<unsigned long long>(s.total_cycles),
                  s.cycles_per_word);
    }
  }
  std::printf("\npaper: ~1.5 cycles/word at DMA64 (unrolled)\n");
  return 0;
}
