// Kernel throughput guard as a scenario: the idle-heavy workload
// quiescence gating is built for — a duty-cycled 256-point DFT. Each
// frame moves the input block, blocks on exec (controller in exec-wait,
// bus idle, CPU asleep on the IRQ line — the ~2.5k-cycle compute
// countdown fast-forwards in one jump), drains the output, then the whole
// SoC idles until the next frame period. Runs the same workload with
// gating on and off, checks the simulated clocks agree bit-for-bit, and
// reports host cycles/sec for both so a regression in the fast-forward
// path shows up in CI transcripts.
//
// The cycles/sec metrics read the host clock, so the scenario is marked
// non-deterministic: run-to-run payload comparisons skip it.
#include "scenarios.hpp"

#include <chrono>

#include "drv/session.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

/// Cycles between frame starts — the inter-job idle a periodic signal-
/// processing deployment spends waiting for the next buffer.
constexpr u64 kFramePeriodSlack = 20'000;

/// Runs @p invocations interrupt-mode DFT frames; returns {simulated
/// cycles consumed, host seconds}.
std::pair<u64, double> run_idle_heavy_dft(bool gating, int invocations) {
  platform::Soc soc;
  soc.kernel().set_gating(gating);
  rac::DftRac dft(soc.kernel(), "dft", {.points = 256});
  core::Ocp& ocp = soc.add_ocp(dft);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = 0x4000'0000,
                           .in_base = 0x4001'0000,
                           .out_base = 0x4002'0000,
                           .in_words = 512,
                           .out_words = 512});
  // overlap=false: move all input, block on exec, then move the output —
  // the exec window is a pure wait (controller in exec-wait, bus idle,
  // CPU asleep on the IRQ line), which is what gating fast-forwards.
  session.install(core::build_stream_program({.in_words = 512,
                                              .out_words = 512,
                                              .burst = 64,
                                              .overlap = false}),
                  /*timed_program=*/false);
  util::Rng rng(11);
  std::vector<u32> in(512);
  for (auto& w : in) {
    w = static_cast<u32>(util::to_word(rng.range(-30000, 30000)));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const Cycle c0 = soc.kernel().now();
  for (int i = 0; i < invocations; ++i) {
    session.put_input(in);
    session.run_irq();
    soc.cpu().spend(kFramePeriodSlack);  // idle until the next frame
  }
  const auto t1 = std::chrono::steady_clock::now();
  return {soc.kernel().now() - c0,
          std::chrono::duration<double>(t1 - t0).count()};
}

void run_point(const exp::ParamMap&, exp::Result& result) {
  constexpr int kInvocations = 50;
  const auto [gated_cycles, gated_s] =
      run_idle_heavy_dft(/*gating=*/true, kInvocations);
  const auto [ungated_cycles, ungated_s] =
      run_idle_heavy_dft(/*gating=*/false, kInvocations);
  if (gated_cycles != ungated_cycles) {
    result.fail("gating changed the simulated clock: gated " +
                std::to_string(gated_cycles) + " vs ungated " +
                std::to_string(ungated_cycles) + " cycles");
  }
  const double gated_cps = static_cast<double>(gated_cycles) / gated_s;
  const double ungated_cps =
      static_cast<double>(ungated_cycles) / ungated_s;
  result.add_metric("invocations", kInvocations);
  result.add_metric("sim_cycles", gated_cycles);
  result.add_metric("gated_cps", gated_cps);
  result.add_metric("ungated_cps", ungated_cps);
  result.add_metric("speedup", gated_cps / ungated_cps);
}

}  // namespace

void register_kernel_guard(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "kernel_gating",
      .experiment = "guard",
      .title = "quiescence-gating throughput guard (idle-heavy DFT frames)",
      .deterministic = false,
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
