// E1 — reproduces Table I: "Time results for OCP".
//
//             Lat.    HW      SW      Gain
//   IDCT      18      3000    5000    1.67
//   DFT       2485    7000    600e3   85
//
// Lat.: accelerator datasheet latency (cycles to process one block with
// data available). HW: full invocation under Linux (interrupt mode),
// including data transfer and driver overhead. SW: the time-optimized
// software version under the same environment. Gain: SW/HW.
#include <cstdio>

#include "cpu/sw_kernels.hpp"
#include "drv/linux_env.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "rac/idct.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"

namespace {

using namespace ouessant;

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;

struct Row {
  const char* name;
  u64 lat;
  u64 hw;
  u64 sw;
};

/// One Linux-mode (mmap driver) OCP invocation.
u64 run_hw_linux(platform::Soc& soc, core::Ocp& ocp, u32 words,
                 u32 burst) {
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg,
                           .in_base = kIn,
                           .out_base = kOut,
                           .in_words = words,
                           .out_words = words});
  session.install(core::build_stream_program({.in_words = words,
                                              .out_words = words,
                                              .burst = burst,
                                              .overlap = true}),
                  /*timed_program=*/false);
  util::Rng rng(7);
  std::vector<u32> in(words);
  for (auto& w : in) {
    w = static_cast<u32>(util::to_word(rng.range(-30000, 30000)));
  }
  session.put_input(in);

  drv::LinuxEnv linux_env;
  // Warm invocation (page tables populated, program installed): run once
  // to warm up, then measure — matching the paper's steady-state markers.
  linux_env.invoke(session, drv::XferMode::kMmap);
  session.put_input(in);
  return linux_env.invoke(session, drv::XferMode::kMmap);
}

Row run_idct() {
  Row r{.name = "IDCT", .lat = rac::IdctRac::kPaperLatency, .hw = 0, .sw = 0};
  {
    platform::Soc soc;
    rac::IdctRac idct(soc.kernel(), "idct");
    core::Ocp& ocp = soc.add_ocp(idct);
    r.hw = run_hw_linux(soc, ocp, 64, 64);
  }
  {
    platform::Soc soc;
    r.sw = cpu::sw::sw_idct8x8(soc.cpu(), soc.sram(), kIn, kOut);
  }
  return r;
}

Row run_dft() {
  Row r{.name = "DFT", .lat = 0, .hw = 0, .sw = 0};
  {
    platform::Soc soc;
    rac::DftRac dft(soc.kernel(), "dft", {.points = 256});
    r.lat = dft.datasheet_latency();
    core::Ocp& ocp = soc.add_ocp(dft);
    r.hw = run_hw_linux(soc, ocp, 512, 64);
  }
  {
    platform::Soc soc;
    r.sw = cpu::sw::sw_dft_softfloat(soc.cpu(), soc.sram(), kIn, kOut, 256);
  }
  return r;
}

}  // namespace

int main() {
  std::printf("E1: Table I — time results for OCP (cycles @ 50 MHz)\n");
  std::printf("%-6s %8s %10s %12s %8s\n", "", "Lat.", "HW", "SW", "Gain");
  const Row rows[] = {run_idct(), run_dft()};
  for (const Row& r : rows) {
    std::printf("%-6s %8llu %10llu %12llu %8.2f\n", r.name,
                static_cast<unsigned long long>(r.lat),
                static_cast<unsigned long long>(r.hw),
                static_cast<unsigned long long>(r.sw),
                static_cast<double>(r.sw) / static_cast<double>(r.hw));
  }
  std::printf("\npaper:  IDCT 18/3000/5000/1.67  DFT 2485/7000/600e3/85\n");
  return 0;
}
