// E1 — reproduces Table I: "Time results for OCP".
//
//             Lat.    HW      SW      Gain
//   IDCT      18      3000    5000    1.67
//   DFT       2485    7000    600e3   85
//
// Lat.: accelerator datasheet latency (cycles to process one block with
// data available). HW: full invocation under Linux (interrupt mode),
// including data transfer and driver overhead. SW: the time-optimized
// software version under the same environment. Gain: SW/HW.
#include "scenarios.hpp"

#include "cpu/sw_kernels.hpp"
#include "drv/linux_env.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "rac/idct.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;

/// One Linux-mode (mmap driver) OCP invocation.
u64 run_hw_linux(platform::Soc& soc, core::Ocp& ocp, u32 words, u32 burst) {
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg,
                           .in_base = kIn,
                           .out_base = kOut,
                           .in_words = words,
                           .out_words = words});
  session.install(core::build_stream_program({.in_words = words,
                                              .out_words = words,
                                              .burst = burst,
                                              .overlap = true}),
                  /*timed_program=*/false);
  util::Rng rng(7);
  std::vector<u32> in(words);
  for (auto& w : in) {
    w = static_cast<u32>(util::to_word(rng.range(-30000, 30000)));
  }
  session.put_input(in);

  drv::LinuxEnv linux_env;
  // Warm invocation (page tables populated, program installed): run once
  // to warm up, then measure — matching the paper's steady-state markers.
  linux_env.invoke(session, drv::XferMode::kMmap);
  session.put_input(in);
  return linux_env.invoke(session, drv::XferMode::kMmap);
}

void run_point(const exp::ParamMap& params, exp::Result& result) {
  const std::string& workload = params.get_str("workload");
  u64 lat = 0;
  u64 hw = 0;
  u64 sw = 0;
  if (workload == "idct") {
    lat = rac::IdctRac::kPaperLatency;
    {
      platform::Soc soc;
      rac::IdctRac idct(soc.kernel(), "idct");
      core::Ocp& ocp = soc.add_ocp(idct);
      hw = run_hw_linux(soc, ocp, 64, 64);
      obs::validate_soc_ledger(soc);
    }
    {
      platform::Soc soc;
      sw = cpu::sw::sw_idct8x8(soc.cpu(), soc.sram(), kIn, kOut);
      obs::validate_soc_ledger(soc);
    }
  } else {
    {
      platform::Soc soc;
      rac::DftRac dft(soc.kernel(), "dft", {.points = 256});
      lat = dft.datasheet_latency();
      core::Ocp& ocp = soc.add_ocp(dft);
      hw = run_hw_linux(soc, ocp, 512, 64);
      obs::validate_soc_ledger(soc);
    }
    {
      platform::Soc soc;
      sw = cpu::sw::sw_dft_softfloat(soc.cpu(), soc.sram(), kIn, kOut, 256);
      obs::validate_soc_ledger(soc);
    }
  }
  result.add_metric("lat", lat);
  result.add_metric("hw", hw);
  result.add_metric("sw", sw);
  result.add_metric("gain", static_cast<double>(sw) / static_cast<double>(hw));
}

}  // namespace

void register_e1_table1(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e1_table1",
      .experiment = "E1",
      .title = "Table I: HW vs SW invocation time under Linux (cycles)",
      .grid = {{.name = "workload", .values = {"idct", "dft"}}},
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
