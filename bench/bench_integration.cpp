// E5 — the integration-style comparison the paper argues qualitatively in
// §II/§IV: the same accelerator driven through
//   (a) programmed I/O on a classic bus-slave wrapper,
//   (b) a discrete DMA engine + the slave wrapper,
//   (c) an Ouessant OCP (integrated transfer instructions),
// swept over block sizes. Every path performs the identical computation
// (identity datapath with a fixed 18-cycle latency) so the differences are
// pure integration cost. The OCP's advantages are structural: one bus
// crossing per word instead of two, and no per-step CPU orchestration.
#include "scenarios.hpp"

#include <algorithm>

#include "baseline/runners.hpp"
#include "drv/session.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/passthrough.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;
constexpr u32 kComputeCycles = 18;

std::vector<u32> workload(u32 words) {
  util::Rng rng(words);
  std::vector<u32> v(words);
  for (auto& w : v) w = rng.next_u32();
  return v;
}

u64 run_ocp(u32 words) {
  platform::Soc soc;
  rac::PassthroughRac rac(soc.kernel(), "pass", words, 32, kComputeCycles);
  core::Ocp& ocp = soc.add_ocp(rac);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg, .in_base = kIn,
                           .out_base = kOut, .in_words = words,
                           .out_words = words});
  session.install(core::build_stream_program(
                      {.in_words = words, .out_words = words,
                       .burst = std::min(words, 64u), .overlap = true}),
                  /*timed_program=*/false);
  session.put_input(workload(words));
  const u64 cycles = session.run_irq();
  obs::validate_soc_ledger(soc);
  return cycles;
}

u64 run_pio(u32 words) {
  platform::Soc soc;
  baseline::SlaveAccel accel(soc.kernel(), "slave",
                             platform::kSlaveAccelBase, words, words,
                             kComputeCycles,
                             [](const std::vector<u32>& v) { return v; });
  soc.bus().connect_slave(accel, platform::kSlaveAccelBase,
                          baseline::kSlaveSpanBytes);
  soc.sram().load(kIn, workload(words));
  const u64 cycles =
      baseline::run_slave_pio(soc.cpu(), accel, kIn, kOut, words, words);
  obs::validate_soc_ledger(soc);
  return cycles;
}

u64 run_dma(u32 words) {
  platform::Soc soc;
  baseline::SlaveAccel accel(soc.kernel(), "slave",
                             platform::kSlaveAccelBase, words, words,
                             kComputeCycles,
                             [](const std::vector<u32>& v) { return v; });
  soc.bus().connect_slave(accel, platform::kSlaveAccelBase,
                          baseline::kSlaveSpanBytes);
  baseline::DmaEngine dma(soc.kernel(), "dma", soc.bus(), platform::kDmaBase);
  soc.sram().load(kIn, workload(words));
  const u64 cycles = baseline::run_slave_dma(soc.cpu(), dma, accel, kIn, kOut,
                                             words, words,
                                             std::min(words, 64u));
  obs::validate_soc_ledger(soc);
  return cycles;
}

void run_point(const exp::ParamMap& params, exp::Result& result) {
  const u32 words = params.get_u32("words");
  const u64 pio = run_pio(words);
  const u64 dma = run_dma(words);
  const u64 ocp = run_ocp(words);
  result.add_metric("pio", pio);
  result.add_metric("dma", dma);
  result.add_metric("ocp", ocp);
  result.add_metric("pio_over_ocp",
                    static_cast<double>(pio) / static_cast<double>(ocp));
  result.add_metric("dma_over_ocp",
                    static_cast<double>(dma) / static_cast<double>(ocp));
}

}  // namespace

void register_e5_integration(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e5_integration",
      .experiment = "E5",
      .title = "PIO vs discrete DMA vs OCP, identical accelerator (cycles)",
      .grid = {{.name = "words", .values = {16, 32, 64, 128, 256, 512, 1024}}},
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
