// E11 (model validation) — three independent derivations of the software
// IDCT cost, plus the hardware path, on one table:
//   * paper Table I (measured on the Leon3 board): SW 5000 cycles,
//   * the analytic cost model (cpu::sw, used by E1),
//   * L3 assembly *executed* instruction by instruction on the ISS,
// and the OCP invocation they all compare against. The assembly kernel,
// the C++ datapath and the RAC produce bit-identical samples, so this is
// purely a timing cross-check of the substrates.
#include "scenarios.hpp"

#include "cpu/sw_kernels.hpp"
#include "drv/session.hpp"
#include "l3/asm.hpp"
#include "l3/core.hpp"
#include "l3/kernels.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/idct.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"
#include "util/transforms.hpp"

namespace ouessant::scenarios {
namespace {

u64 run_asm_idct(bool* bit_exact) {
  sim::Kernel kernel;
  bus::AhbBus bus(kernel, "ahb");
  mem::Sram sram("sram", 0x4000'0000, 1 << 20);
  bus.connect_slave(sram, 0x4000'0000, 1 << 20);

  const l3::IdctLayout lay{};
  sram.load(lay.table, l3::idct_basis_image());
  util::Rng rng(12);
  i32 coef[64];
  for (int i = 0; i < 64; ++i) {
    coef[i] = rng.range(-1024, 1023);
    sram.poke(lay.src + static_cast<Addr>(i) * 4, util::to_word(coef[i]));
  }
  const auto program = l3::assemble(l3::idct8x8_source(lay), 0x4000'0000);
  sram.load(0x4000'0000, program.words);
  l3::Cpu cpu(kernel, "l3", sram, bus,
              l3::CpuConfig{.reset_pc = 0x4000'0000});
  const Cycle t0 = kernel.now();
  kernel.run_until([&] { return cpu.halted(); }, 500'000);
  const u64 cycles = kernel.now() - t0;

  i32 expected[64];
  util::fixed_idct8x8(coef, expected);
  *bit_exact = true;
  for (u32 i = 0; i < 64; ++i) {
    if (util::from_word(sram.peek(lay.dst + i * 4)) != expected[i]) {
      *bit_exact = false;
    }
  }
  return cycles;
}

u64 run_hw_idct() {
  platform::Soc soc;
  rac::IdctRac idct(soc.kernel(), "idct");
  core::Ocp& ocp = soc.add_ocp(idct);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = 0x4000'0000,
                           .in_base = 0x4001'0000,
                           .out_base = 0x4002'0000,
                           .in_words = 64,
                           .out_words = 64});
  session.install(core::build_stream_program(
                      {.in_words = 64, .out_words = 64, .burst = 64}),
                  /*timed_program=*/false);
  util::Rng rng(12);
  std::vector<u32> in(64);
  for (auto& w : in) w = util::to_word(rng.range(-1024, 1023));
  session.put_input(in);
  const u64 cycles = session.run_irq();
  obs::validate_soc_ledger(soc);
  return cycles;
}

void run_point(const exp::ParamMap&, exp::Result& result) {
  bool bit_exact = false;
  const u64 executed = run_asm_idct(&bit_exact);
  const u64 analytic = cpu::sw::cost_idct8x8(cpu::CpuCosts{});
  const u64 hw = run_hw_idct();
  if (!bit_exact) result.fail("assembly output not bit-exact");
  result.add_metric("paper_sw", 5000);
  result.add_metric("analytic", analytic);
  result.add_metric("iss_executed", executed);
  result.add_metric("hw", hw);
  result.add_metric("bit_exact", bit_exact ? "yes" : "NO");
}

}  // namespace

void register_e11_l3_validation(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e11_l3",
      .experiment = "E11",
      .title = "software-IDCT cost, three independent derivations",
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
