// Registration entry points for every paper experiment (E1–E12) plus the
// simulator guards. Each bench/bench_*.cpp file registers the scenarios
// for one experiment; register_all_scenarios() assembles the whole
// registry in E-order. The registry is built once, single-threaded, and
// read-only afterwards — the isolation rule parallel sweeps rely on.
#pragma once

#include "exp/scenario.hpp"

namespace ouessant::scenarios {

void register_e1_table1(exp::Registry& r);          // bench_table1.cpp
void register_e2_resources(exp::Registry& r);       // bench_resources.cpp
void register_e3_linux_overhead(exp::Registry& r);  // bench_linux_overhead.cpp
void register_e4_transfer(exp::Registry& r);        // bench_transfer.cpp
void register_e5_integration(exp::Registry& r);     // bench_integration.cpp
void register_e6_isa_ext(exp::Registry& r);         // bench_isa_ext.cpp
void register_e7_dpr(exp::Registry& r);             // bench_dpr.cpp
void register_e8_bus_portability(exp::Registry& r); // bench_bus_portability.cpp
void register_e9_jpeg(exp::Registry& r);            // bench_jpeg.cpp
void register_e10_coupled(exp::Registry& r);        // bench_coupled.cpp
void register_e11_l3_validation(exp::Registry& r);  // bench_l3_validation.cpp
void register_e12_contention(exp::Registry& r);     // bench_contention.cpp
void register_kernel_guard(exp::Registry& r);       // bench_kernel_guard.cpp
void register_speed(exp::Registry& r);              // bench_speed.cpp
void register_serve(exp::Registry& r);              // bench_serve.cpp
void register_serve_faulty(exp::Registry& r);       // bench_serve_faulty.cpp
void register_fleet_warmboot(exp::Registry& r);     // bench_fleet.cpp
void register_dpr_farm(exp::Registry& r);           // bench_dpr_farm.cpp
void register_chain(exp::Registry& r);              // bench_chain.cpp

/// Everything above, in E-order. Call once at startup.
void register_all_scenarios(exp::Registry& r);

}  // namespace ouessant::scenarios
