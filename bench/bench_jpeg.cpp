// E9 (application figure) — the motivating workload end to end: JPEG-style
// decode throughput across image sizes and qualities, software vs OCP
// sequential vs OCP software-pipelined with the entropy stage.
//
// The per-block numbers connect directly to Table I: the IDCT row's
// 1.67x gain is per *isolated* invocation under Linux; at application
// level (baremetal back-to-back blocks, entropy decode overlapped) the
// integration wins by an order of magnitude.
#include "scenarios.hpp"

#include "codec/jpeg.hpp"
#include "cpu/sw_kernels.hpp"
#include "drv/session.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/idct.hpp"
#include "util/fixed.hpp"
#include "util/transforms.hpp"

namespace ouessant::scenarios {
namespace {

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kCoef = 0x4001'0000;
constexpr Addr kPix = 0x4002'0000;

struct Times {
  u64 sw = 0;
  u64 hw_seq = 0;
  u64 hw_pipe = 0;
};

Times run_decode(u32 dim, u32 quality, codec::EntropyKind entropy) {
  const auto img = codec::test_image(dim, dim);
  const auto jpg = codec::encode(img, quality, entropy);
  Times t;

  // Software decode.
  {
    platform::Soc soc;
    const Cycle t0 = soc.kernel().now();
    auto blocks = codec::decode_coefficients(jpg, &soc.cpu());
    for (auto& blk : blocks) {
      std::vector<u32> coef(64);
      for (u32 i = 0; i < 64; ++i) coef[i] = util::to_word(blk[i]);
      soc.sram().load(kCoef, coef);
      cpu::sw::sw_idct8x8(soc.cpu(), soc.sram(), kCoef, kPix);
    }
    t.sw = soc.kernel().now() - t0;
    obs::validate_soc_ledger(soc);
  }

  // OCP decode, sequential and pipelined.
  for (const bool pipelined : {false, true}) {
    platform::Soc soc;
    rac::IdctRac idct(soc.kernel(), "idct");
    core::Ocp& ocp = soc.add_ocp(idct);
    drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                            {.prog_base = kProg, .in_base = kCoef,
                             .out_base = kPix, .in_words = 64,
                             .out_words = 64});
    session.install(core::build_stream_program(
                        {.in_words = 64, .out_words = 64, .burst = 64}),
                    /*timed_program=*/false);
    session.driver().enable_irq(true);

    const Cycle t0 = soc.kernel().now();
    const auto blocks = codec::decode_coefficients(jpg);  // functional
    // Prorated entropy cost per block (charged by the CPU).
    const u64 per_block = [&] {
      platform::Soc probe;
      const Cycle p0 = probe.kernel().now();
      (void)codec::decode_coefficients(jpg, &probe.cpu());
      return (probe.kernel().now() - p0) / blocks.size();
    }();

    if (!pipelined) {
      for (const auto& blk : blocks) {
        soc.cpu().spend(per_block);  // entropy decode this block
        std::vector<u32> coef(64);
        for (u32 i = 0; i < 64; ++i) coef[i] = util::to_word(blk[i]);
        session.put_input(coef);
        session.run_irq();
      }
      t.hw_seq = soc.kernel().now() - t0;
    } else {
      soc.cpu().spend(per_block);  // prologue: block 0
      for (std::size_t b = 0; b < blocks.size(); ++b) {
        std::vector<u32> coef(64);
        for (u32 i = 0; i < 64; ++i) coef[i] = util::to_word(blocks[b][i]);
        session.put_input(coef);
        session.start_async();
        if (b + 1 < blocks.size()) soc.cpu().spend(per_block);
        session.driver().wait_done_irq();
      }
      t.hw_pipe = soc.kernel().now() - t0;
    }
    obs::validate_soc_ledger(soc);
  }
  return t;
}

void run_point(const exp::ParamMap& params, exp::Result& result) {
  const u32 dim = params.get_u32("dim");
  const u32 quality = params.get_u32("quality");
  const auto entropy = params.get_str("entropy") == "rle"
                           ? codec::EntropyKind::kRle
                           : codec::EntropyKind::kHuffman;
  const Times t = run_decode(dim, quality, entropy);
  result.add_metric("sw", t.sw);
  result.add_metric("hw_seq", t.hw_seq);
  result.add_metric("hw_pipe", t.hw_pipe);
  result.add_metric("sw_over_seq", static_cast<double>(t.sw) / t.hw_seq);
  result.add_metric("sw_over_pipe", static_cast<double>(t.sw) / t.hw_pipe);
}

}  // namespace

void register_e9_jpeg(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e9_jpeg",
      .experiment = "E9",
      .title = "JPEG-style decode throughput (cycles; 50 MHz SoC)",
      .grid = {{.name = "dim", .values = {32, 64, 96}},
               {.name = "quality", .values = {25, 75}},
               {.name = "entropy", .values = {"rle", "huffman"}}},
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
