// E10 (related-work ablation) — Ouessant vs the Molen-style ISA-coupled
// integration the paper positions itself against (§II-B): "While it
// provides transparency and low latency access to the accelerator, it
// prevents parallelization between hardware and processor".
//
// Two measurements over the 256-pt DFT workload:
//  1. isolated invocation latency — Molen's strength (no controller
//     fetches, no driver);
//  2. total time for an invocation plus K cycles of independent CPU work —
//     the OCP overlaps, the coupled design serializes; the crossover K*
//     is the amount of spare CPU work that pays for Ouessant's overhead.
#include "scenarios.hpp"

#include "baseline/coupled.hpp"
#include "baseline/slave_accel.hpp"
#include "drv/session.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;
constexpr u32 kWords = 512;
constexpr u32 kCompute = 1461;  // same core latency for both integrations

std::vector<u32> workload() {
  util::Rng rng(3);
  std::vector<u32> v(kWords);
  for (auto& w : v) w = rng.next_u32() & 0x00FF'FFFF;
  return v;
}

/// Molen-style: returns {isolated latency, total with K cycles CPU work}.
std::pair<u64, u64> run_coupled(u64 cpu_work) {
  platform::Soc soc;
  baseline::CoupledAccel ccu(soc.cpu(), "molen_dft", kWords, kWords,
                             kCompute, baseline::dft_fn(256));
  soc.sram().load(kIn, workload());
  const Cycle t0 = soc.kernel().now();
  const u64 lat = ccu.invoke(kIn, kOut);
  soc.cpu().spend(cpu_work);  // serialized: the CPU was stalled
  obs::validate_soc_ledger(soc);
  return {lat, soc.kernel().now() - t0};
}

/// Ouessant: returns {isolated latency, total with K cycles CPU work}.
std::pair<u64, u64> run_ocp(u64 cpu_work) {
  platform::Soc soc;
  rac::DftRac dft(soc.kernel(), "dft", {.points = 256});
  core::Ocp& ocp = soc.add_ocp(dft);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg, .in_base = kIn,
                           .out_base = kOut, .in_words = kWords,
                           .out_words = kWords});
  session.install(core::figure4_program(), /*timed_program=*/false);
  session.put_input(workload());
  session.driver().enable_irq(true);

  const Cycle t0 = soc.kernel().now();
  session.start_async();
  soc.cpu().spend(cpu_work);  // overlapped with the OCP
  session.driver().wait_done_irq();
  const u64 total = soc.kernel().now() - t0;

  // Isolated latency: a fresh run with no CPU work.
  session.put_input(workload());
  const u64 lat = session.run_irq();
  obs::validate_soc_ledger(soc);
  return {lat, total};
}

void run_latency_point(const exp::ParamMap&, exp::Result& result) {
  const auto [molen_lat, molen0] = run_coupled(0);
  const auto [ocp_lat, ocp0] = run_ocp(0);
  (void)molen0;
  (void)ocp0;
  result.add_metric("coupled_lat", molen_lat);
  result.add_metric("ocp_lat", ocp_lat);
  result.add_metric(
      "ocp_overhead_pct",
      100.0 * (static_cast<double>(ocp_lat) / molen_lat - 1.0));
}

void run_overlap_point(const exp::ParamMap& params, exp::Result& result) {
  const u64 k = static_cast<u64>(params.get_int("k"));
  const u64 molen = run_coupled(k).second;
  const u64 ocp = run_ocp(k).second;
  result.add_metric("coupled_total", molen);
  result.add_metric("ocp_total", ocp);
  result.add_metric("ocp_over_coupled",
                    static_cast<double>(ocp) / static_cast<double>(molen));
}

}  // namespace

void register_e10_coupled(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e10_latency",
      .experiment = "E10",
      .title = "ISA-coupled (Molen-style) vs Ouessant: isolated latency",
      .run = run_latency_point,
  });
  r.add(exp::ScenarioSpec{
      .name = "e10_overlap",
      .experiment = "E10",
      .title = "invocation + K cycles of independent CPU work (total)",
      .grid = {{.name = "k",
                .values = {0, 500, 1000, 2000, 4000, 8000, 16000}}},
      .run = run_overlap_point,
  });
}

}  // namespace ouessant::scenarios
