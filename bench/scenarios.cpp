#include "scenarios.hpp"

namespace ouessant::scenarios {

void register_all_scenarios(exp::Registry& r) {
  register_e1_table1(r);
  register_e2_resources(r);
  register_e3_linux_overhead(r);
  register_e4_transfer(r);
  register_e5_integration(r);
  register_e6_isa_ext(r);
  register_e7_dpr(r);
  register_e8_bus_portability(r);
  register_e9_jpeg(r);
  register_e10_coupled(r);
  register_e11_l3_validation(r);
  register_e12_contention(r);
  register_kernel_guard(r);
  register_speed(r);
  register_serve(r);
  register_serve_faulty(r);
  register_fleet_warmboot(r);
  register_dpr_farm(r);
  register_chain(r);
}

}  // namespace ouessant::scenarios
