// fleet_obs_guard — the tier-1 fleet-observability invariants:
//
//   1. PASSIVITY AT FLEET SCALE. The same 16-shard, fault-armed fleet
//      runs twice from the same template image: once unarmed and once
//      with every observability arm live (1-in-N sampling profiler,
//      per-class SLO burn-rate monitors, flight recorders). Every
//      shard's simulated clock, job counts and per-job latency digest
//      must be bit-identical across the two runs — telemetry may cost
//      host time, never simulated time.
//   2. OVERHEAD. The armed run must finish within 1.5x the unarmed
//      host time plus a fixed slack floor (the floor keeps short runs
//      from flaking on scheduler noise).
//   3. SKETCH FIDELITY. Both runs also stream latencies into an exact
//      merged histogram; the guard writes the sketch and exact
//      quantiles side by side to argv[1] so scripts/run_tier1.sh can
//      assert the documented relative-error bound with an independent
//      checker.
//   4. FLIGHT DUMPS. The armed fleet carries a permanently hung RAC,
//      so every shard must trip its flight recorder; the dumps land at
//      argv[2]_shard<i>.flight.json for ouessant_trace to round-trip.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "fleet/fleet.hpp"
#include "obs/slo.hpp"

namespace {

using namespace ouessant;

constexpr u32 kShards = 16;
constexpr double kHostFactor = 1.5;
constexpr double kHostSlackSeconds = 0.25;

fleet::FleetConfig make_config() {
  fleet::FleetConfig cfg;
  cfg.shards = kShards;
  cfg.base_seed = 0xF1EE'0B55ull;
  cfg.service.ocps = {svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 2},
                      svc::OcpSpec{.kind = svc::JobKind::kDft, .max_batch = 2},
                      svc::OcpSpec{.kind = svc::JobKind::kFir, .max_batch = 2}};
  cfg.service.queue_depth = 128;
  // Worker 0's RAC swallows every completion; the watchdog + quarantine
  // machinery is what trips the flight recorders. kIdct stays out of
  // the warm-up so the hang first manifests inside each shard (the
  // template would otherwise snapshot the worker already quarantined).
  cfg.service.faults.add(
      {.kind = fault::FaultKind::kRacHang, .ocp = 0, .prob = 1.0});
  cfg.service.retry = svc::RetryPolicy{.max_attempts = 4,
                                       .backoff_base = 2048,
                                       .backoff_mult = 2,
                                       .quarantine_after = 2,
                                       .watchdog_cycles = 16'384};
  cfg.warmup.jobs = 160;
  cfg.warmup.mean_gap = 200.0;
  cfg.warmup.kinds = {svc::JobKind::kDft, svc::JobKind::kFir};
  cfg.shard_load = cfg.warmup;
  cfg.shard_load.jobs = 96;
  cfg.shard_load.kinds = {svc::JobKind::kIdct, svc::JobKind::kDft,
                          svc::JobKind::kFir};
  cfg.shard_load.high_fraction = 0.25;
  // The armed-vs-unarmed digest comparison below IS the passivity
  // proof; run_fleet's own redo pass would only repeat it.
  cfg.verify_reproducible = false;
  // Exact histogram in BOTH runs: identical samples is one more
  // identity check, and the sketch-vs-exact quantile table needs it.
  cfg.obs.keep_exact_histogram = true;
  return cfg;
}

struct RunSnapshot {
  fleet::FleetReport rep;
  double host_seconds = 0.0;
};

RunSnapshot run_once(bool armed, const std::string& flight_stem) {
  fleet::FleetConfig cfg = make_config();
  if (armed) {
    cfg.obs.profiler = true;
    cfg.obs.profile.period = 8;  // dense enough to prove gating matters
    cfg.obs.slo = true;
    cfg.obs.slo_config.classes = {
        obs::SloObjective{
            .name = "high", .latency_cycles = 20'000, .target = 0.99},
        obs::SloObjective{
            .name = "normal", .latency_cycles = 60'000, .target = 0.95}};
    cfg.obs.slo_config.long_window = 40'000;
    cfg.obs.slo_config.short_window = 5'000;
    cfg.obs.flight = true;
    cfg.obs.flight_capacity = 1024;
    cfg.obs.flight_dump_stem = flight_stem;
  }
  const auto t0 = std::chrono::steady_clock::now();
  RunSnapshot snap;
  snap.rep = fleet::run_fleet(cfg);
  snap.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return snap;
}

void write_quantile_table(const std::string& path,
                          const fleet::FleetReport& rep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw SimError("fleet_obs_guard: cannot write " + path);
  }
  const std::vector<double> ps = {50.0, 90.0, 95.0, 99.0, 99.9};
  std::fprintf(f, "{\n  \"schema\": \"ouessant.fleet_obs_guard.v1\",\n");
  std::fprintf(f, "  \"alpha\": %.9g,\n", rep.e2e_sketch.relative_error());
  std::fprintf(f, "  \"count\": %llu,\n",
               static_cast<unsigned long long>(rep.e2e_sketch.count()));
  std::fprintf(f, "  \"quantiles\": [\n");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::fprintf(
        f, "    {\"p\": %.9g, \"sketch\": %llu, \"exact\": %llu}%s\n", ps[i],
        static_cast<unsigned long long>(rep.e2e_sketch.percentile(ps[i])),
        static_cast<unsigned long long>(rep.exact_e2e.percentile(ps[i])),
        i + 1 < ps.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string table_path =
      argc > 1 ? argv[1] : "fleet_obs_guard.json";
  const std::string flight_stem =
      argc > 2 ? argv[2] : "fleet_obs_guard";
  try {
    const RunSnapshot bare = run_once(false, "");
    const RunSnapshot armed = run_once(true, flight_stem);

    int failures = 0;
    for (u32 i = 0; i < kShards; ++i) {
      const fleet::ShardResult& b = bare.rep.shard_results[i];
      const fleet::ShardResult& a = armed.rep.shard_results[i];
      if (b.digest != a.digest || b.report.start != a.report.start ||
          b.report.end != a.report.end ||
          b.report.completed != a.report.completed ||
          b.report.rejected != a.report.rejected ||
          b.report.failed != a.report.failed) {
        std::fprintf(stderr,
                     "fleet_obs_guard: shard %u diverged under arming: "
                     "digest %016llx/%016llx end %llu/%llu "
                     "completed %llu/%llu\n",
                     i, static_cast<unsigned long long>(b.digest),
                     static_cast<unsigned long long>(a.digest),
                     static_cast<unsigned long long>(b.report.end),
                     static_cast<unsigned long long>(a.report.end),
                     static_cast<unsigned long long>(b.report.completed),
                     static_cast<unsigned long long>(a.report.completed));
        ++failures;
      }
    }
    if (!(bare.rep.e2e_sketch == armed.rep.e2e_sketch)) {
      std::fprintf(stderr,
                   "fleet_obs_guard: merged sketches diverged under arming\n");
      ++failures;
    }
    if (bare.rep.exact_e2e.samples() != armed.rep.exact_e2e.samples()) {
      std::fprintf(stderr,
                   "fleet_obs_guard: exact latency streams diverged\n");
      ++failures;
    }
    if (bare.rep.peak_retained_samples != 0 ||
        armed.rep.peak_retained_samples != 0) {
      std::fprintf(stderr,
                   "fleet_obs_guard: raw samples retained in shard reports\n");
      ++failures;
    }
    if (armed.rep.flight_triggers != kShards ||
        armed.rep.flight_dumps.size() != kShards) {
      std::fprintf(stderr,
                   "fleet_obs_guard: expected %u flight dumps, got %llu "
                   "triggers / %zu dumps\n",
                   kShards,
                   static_cast<unsigned long long>(armed.rep.flight_triggers),
                   armed.rep.flight_dumps.size());
      ++failures;
    }
    const double budget =
        kHostFactor * bare.host_seconds + kHostSlackSeconds;
    if (armed.host_seconds > budget) {
      std::fprintf(stderr,
                   "fleet_obs_guard: observability overhead over budget: "
                   "unarmed %.3fs, armed %.3fs, budget %.3fs\n",
                   bare.host_seconds, armed.host_seconds, budget);
      ++failures;
    }

    write_quantile_table(table_path, armed.rep);

    std::printf(
        "fleet_obs_guard: %u shards, %llu jobs, sketch count %llu "
        "(%zu buckets) | unarmed %.3fs, armed %.3fs (budget %.3fs) | "
        "%llu flight dumps | %s\n",
        kShards, static_cast<unsigned long long>(armed.rep.total_jobs),
        static_cast<unsigned long long>(armed.rep.e2e_sketch.count()),
        armed.rep.e2e_sketch.bucket_count(), bare.host_seconds,
        armed.host_seconds, budget,
        static_cast<unsigned long long>(armed.rep.flight_triggers),
        failures == 0 ? "OK" : "FAIL");
    std::printf("quantile table written to %s\n", table_path.c_str());
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_obs_guard: %s\n", e.what());
    return 2;
  }
}
