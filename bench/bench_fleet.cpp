// FLEET (fleet shard layer) — warm-boot cloning under measurement.
//
// One scenario, fleet_warmboot: boot a template service stack cold,
// serve a warm-up workload, snapshot it, then fork >= 8 shards from the
// image (construction + restore + warm begin) and drive them
// round-robin, each with its own workload seed. The run records the
// aggregated fleet metrics (total throughput, availability, merged
// end-to-end histogram), the image size, and the wall-time comparison
// that justifies the machinery: cold_boot_ms (template build + warm-up)
// vs fork_ms_per_shard (what each additional fleet member actually
// paid). run_fleet's built-in reproducibility check — a second clone at
// shard 0's seed must replay its report bit-for-bit — is a hard pass
// condition here.
//
// Host wall-clock readings make this scenario non-deterministic in the
// --compare-jobs sense; the simulated-side metrics are still seeded and
// exactly repeatable.
#include "scenarios.hpp"

#include "fleet/fleet.hpp"

namespace ouessant::scenarios {
namespace {

void run_warmboot(const exp::ParamMap& params, const exp::RunContext& ctx,
                  exp::Result& result) {
  fleet::FleetConfig cfg;
  cfg.shards = params.get_u32("shards");
  cfg.base_seed = ctx.seed;
  cfg.service.ocps = {svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 2},
                      svc::OcpSpec{.kind = svc::JobKind::kDft, .max_batch = 2},
                      svc::OcpSpec{.kind = svc::JobKind::kFir, .max_batch = 2}};
  cfg.service.queue_depth = 128;
  // Warm-up: enough traffic to install every worker's microcode,
  // exercise each IRQ path and reach steady state before the image is
  // taken — the serving time a forked shard gets for free.
  cfg.warmup.jobs = 240;
  cfg.warmup.mean_gap = 200.0;
  cfg.warmup.kinds = {svc::JobKind::kIdct, svc::JobKind::kDft,
                      svc::JobKind::kFir};
  // Per-shard serving load (seed overridden per shard by run_fleet).
  cfg.shard_load = cfg.warmup;
  cfg.shard_load.jobs = 96;
  cfg.shard_load.high_fraction = 0.25;

  const fleet::FleetReport rep = fleet::run_fleet(cfg);

  result.add_metric("shards", static_cast<u64>(rep.shards));
  result.add_metric("total_jobs", rep.total_jobs);
  result.add_metric("completed", rep.total_completed);
  result.add_metric("rejected", rep.total_rejected);
  result.add_metric("availability_pct", 100.0 * rep.availability());
  result.add_metric("throughput_jpmc", rep.throughput_jpmc);
  rep.merged_e2e.add_metrics(result, "e2e");
  result.add_metric("snapshot_bytes", rep.snapshot_bytes);
  result.add_metric("cold_boot_ms", rep.cold_boot_ms);
  result.add_metric("fork_ms_per_shard", rep.fork_ms_per_shard);
  result.add_metric("warmboot_speedup",
                    rep.fork_ms_per_shard > 0.0
                        ? rep.cold_boot_ms / rep.fork_ms_per_shard
                        : 0.0);
  result.add_metric("reproducible", static_cast<u64>(rep.reproducible));

  if (!rep.reproducible) {
    result.fail("shard replay at the fixed seed diverged from shard 0");
  }
  if (rep.total_completed + rep.total_rejected + rep.total_failed !=
      rep.total_jobs) {
    result.fail("fleet lost jobs");
  }
  for (const fleet::ShardResult& shard : rep.shard_results) {
    if (shard.report.completed == 0) {
      result.fail("shard " + std::to_string(shard.index) +
                  " completed nothing");
    }
  }
}

}  // namespace

void register_fleet_warmboot(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "fleet_warmboot",
      .experiment = "FLEET",
      .title = "warm-boot >= 8 shards from one snapshot, serve round-robin",
      .grid = {{.name = "shards", .values = {8, 16}}},
      .deterministic = false,  // cold_boot_ms / fork_ms read the host clock
      .default_seed = 0xF1EE'7000ull,
      .run_ctx = run_warmboot,
  });
}

}  // namespace ouessant::scenarios
