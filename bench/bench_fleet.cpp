// FLEET (fleet shard layer) — warm-boot cloning under measurement.
//
// fleet_warmboot: boot a template service stack cold, serve a warm-up
// workload, snapshot it, then fork >= 8 shards from the image
// (construction + restore + warm begin) and drive them round-robin,
// each with its own workload seed. The run records the aggregated fleet
// metrics (total throughput, availability, sketch-derived end-to-end
// quantiles), the image size, and the wall-time comparison that
// justifies the machinery: cold_boot_ms (template build + warm-up) vs
// fork_ms_per_shard (what each additional fleet member actually paid).
// run_fleet's built-in reproducibility check — a second clone at shard
// 0's seed must replay its report bit-for-bit — is a hard pass
// condition here. Latencies stream into mergeable quantile sketches as
// shards retire; the scenario asserts zero raw samples were retained
// (the O(jobs) -> O(sketch) memory fix).
//
// fleet_slo: the same fleet with every observability arm enabled and
// the fault injector live — bus ERROR beats at a fixed rate plus a
// permanently hung RAC on every shard. The SLO monitor classifies each
// job against per-tenant-class objectives, multi-window burn-rate
// alerts fire as errors land, flight recorders trip on the
// quarantine/watchdog path, and the merged ouessant.slo.v1 report plus
// per-shard flight dumps are written under build/bench/ for
// ouessant_trace to render. Passivity is enforced by run_fleet's
// reproducibility redo, which replays shard 0 UNARMED and must match
// the armed run's digest bit-for-bit.
//
// Host wall-clock readings make both scenarios non-deterministic in the
// --compare-jobs sense; the simulated-side metrics are still seeded and
// exactly repeatable.
#include "scenarios.hpp"

#include <string>

#include "fault/plan.hpp"
#include "fleet/fleet.hpp"
#include "obs/sketch.hpp"
#include "obs/slo.hpp"

namespace ouessant::scenarios {
namespace {

/// Three heterogeneous batching workers behind a deep queue — the fleet
/// template every scenario in this family clones.
fleet::FleetConfig fleet_base(const exp::RunContext& ctx, u32 shards) {
  fleet::FleetConfig cfg;
  cfg.shards = shards;
  cfg.base_seed = ctx.seed;
  cfg.service.ocps = {svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 2},
                      svc::OcpSpec{.kind = svc::JobKind::kDft, .max_batch = 2},
                      svc::OcpSpec{.kind = svc::JobKind::kFir, .max_batch = 2}};
  cfg.service.queue_depth = 128;
  // Warm-up: enough traffic to install every worker's microcode,
  // exercise each IRQ path and reach steady state before the image is
  // taken — the serving time a forked shard gets for free.
  cfg.warmup.jobs = 240;
  cfg.warmup.mean_gap = 200.0;
  cfg.warmup.kinds = {svc::JobKind::kIdct, svc::JobKind::kDft,
                      svc::JobKind::kFir};
  // Per-shard serving load (seed overridden per shard by run_fleet).
  cfg.shard_load = cfg.warmup;
  cfg.shard_load.jobs = 96;
  cfg.shard_load.high_fraction = 0.25;
  return cfg;
}

/// Flatten the sketch-derived latency block with LatencyStats-compatible
/// metric names (e2e_p50/_p95/... so FLEET rows read like every other
/// experiment), plus the sketch's own footprint.
void add_sketch_metrics(const obs::QuantileSketch& s, exp::Result& result) {
  result.add_metric("e2e_p50", s.percentile(50.0));
  result.add_metric("e2e_p95", s.percentile(95.0));
  result.add_metric("e2e_p99", s.percentile(99.0));
  result.add_metric("e2e_p999", s.percentile(99.9));
  result.add_metric("e2e_mean", s.mean());
  result.add_metric("e2e_max", s.max());
  result.add_metric("sketch_buckets", static_cast<u64>(s.bucket_count()));
}

/// Shared pass/fail block + metric flattening for a fleet report.
void add_fleet_metrics(const fleet::FleetReport& rep, exp::Result& result) {
  result.add_metric("shards", static_cast<u64>(rep.shards));
  result.add_metric("total_jobs", rep.total_jobs);
  result.add_metric("completed", rep.total_completed);
  result.add_metric("rejected", rep.total_rejected);
  result.add_metric("failed", rep.total_failed);
  result.add_metric("availability_pct", 100.0 * rep.availability());
  result.add_metric("throughput_jpmc", rep.throughput_jpmc);
  add_sketch_metrics(rep.e2e_sketch, result);
  result.add_metric("peak_retained_samples", rep.peak_retained_samples);
  result.add_metric("snapshot_bytes", rep.snapshot_bytes);
  result.add_metric("cold_boot_ms", rep.cold_boot_ms);
  result.add_metric("fork_ms_per_shard", rep.fork_ms_per_shard);
  result.add_metric("warmboot_speedup",
                    rep.fork_ms_per_shard > 0.0
                        ? rep.cold_boot_ms / rep.fork_ms_per_shard
                        : 0.0);
  result.add_metric("reproducible", static_cast<u64>(rep.reproducible));

  if (!rep.reproducible) {
    result.fail("shard replay at the fixed seed diverged from shard 0");
  }
  if (rep.total_completed + rep.total_rejected + rep.total_failed !=
      rep.total_jobs) {
    result.fail("fleet lost jobs");
  }
  if (rep.e2e_sketch.count() != rep.total_completed) {
    result.fail("sketch count " + std::to_string(rep.e2e_sketch.count()) +
                " != completed " + std::to_string(rep.total_completed));
  }
  if (rep.peak_retained_samples != 0) {
    result.fail("fleet retained raw latency samples (memory fix regressed)");
  }
  for (const fleet::ShardResult& shard : rep.shard_results) {
    if (shard.report.completed == 0) {
      result.fail("shard " + std::to_string(shard.index) +
                  " completed nothing");
    }
  }
}

void run_warmboot(const exp::ParamMap& params, const exp::RunContext& ctx,
                  exp::Result& result) {
  fleet::FleetConfig cfg = fleet_base(ctx, params.get_u32("shards"));
  const fleet::FleetReport rep = fleet::run_fleet(cfg);
  add_fleet_metrics(rep, result);
}

void run_slo(const exp::ParamMap& params, const exp::RunContext& ctx,
             exp::Result& result) {
  fleet::FleetConfig cfg = fleet_base(ctx, params.get_u32("shards"));

  // Fault pressure: a swept bus-ERROR rate on every access plus worker
  // 0's RAC swallowing every completion. The watchdog times the hangs
  // out, two strikes quarantine the worker — the flight-recorder
  // trigger path — and the bus errors burn the SLO error budget.
  //
  // The warm-up deliberately avoids kIdct: quarantine is permanent and
  // snapshot-carried, so if the hung worker tripped during the template
  // run every shard would inherit it already sidelined and no shard
  // flight recorder could ever fire. Keeping worker 0 idle until the
  // shard phase makes each shard hit the hang itself.
  cfg.warmup.kinds = {svc::JobKind::kDft, svc::JobKind::kFir};
  const double p = static_cast<double>(params.get_u32("fault_ppm")) * 1e-6;
  cfg.service.faults.add({.kind = fault::FaultKind::kBusError, .prob = p})
      .add({.kind = fault::FaultKind::kRacHang, .ocp = 0, .prob = 1.0});
  cfg.service.retry = svc::RetryPolicy{.max_attempts = 4,
                                       .backoff_base = 2048,
                                       .backoff_mult = 2,
                                       .quarantine_after = 2,
                                       .watchdog_cycles = 16'384};

  // Arm everything. One objective per tenant class (class == priority):
  // high pays for a tight latency bound, normal for a loose one.
  cfg.obs.profiler = true;
  cfg.obs.slo = true;
  cfg.obs.slo_config.classes = {
      obs::SloObjective{
          .name = "high", .latency_cycles = 20'000, .target = 0.99},
      obs::SloObjective{
          .name = "normal", .latency_cycles = 60'000, .target = 0.95}};
  cfg.obs.slo_config.long_window = 40'000;
  cfg.obs.slo_config.short_window = 5'000;
  cfg.obs.slo_config.burn_threshold = 2.0;
  cfg.obs.slo_report_path = "build/bench/fleet_slo.slo.json";
  cfg.obs.flight = true;
  cfg.obs.flight_capacity = 1024;
  cfg.obs.flight_dump_stem = "build/bench/fleet_slo";

  const fleet::FleetReport rep = fleet::run_fleet(cfg);
  add_fleet_metrics(rep, result);

  result.add_metric("flight_triggers", rep.flight_triggers);
  result.add_metric("flight_dumps", static_cast<u64>(rep.flight_dumps.size()));
  for (const obs::SloClassReport& cls : rep.slo.classes) {
    result.add_metric("slo_" + cls.name + "_availability",
                      cls.availability());
    result.add_metric("slo_" + cls.name + "_alerts", cls.alerts);
    result.add_metric("slo_" + cls.name + "_worst_burn", cls.worst_burn);
    result.add_metric("slo_" + cls.name + "_met", static_cast<u64>(cls.met()));
  }

  // Every shard carries the hung RAC, so every shard must have tripped
  // its flight recorder on the watchdog/quarantine path.
  if (rep.flight_triggers != rep.shards) {
    result.fail("expected every shard to trip its flight recorder, got " +
                std::to_string(rep.flight_triggers) + "/" +
                std::to_string(rep.shards));
  }
  if (rep.slo.shards != rep.shards) {
    result.fail("SLO report folded " + std::to_string(rep.slo.shards) +
                " monitors, expected " + std::to_string(rep.shards));
  }
  u64 slo_jobs = 0;
  for (const obs::SloClassReport& cls : rep.slo.classes) slo_jobs += cls.jobs;
  if (slo_jobs != rep.total_completed + rep.total_failed) {
    result.fail("SLO job accounting (" + std::to_string(slo_jobs) +
                ") != completed + failed (" +
                std::to_string(rep.total_completed + rep.total_failed) + ")");
  }
}

}  // namespace

void register_fleet_warmboot(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "fleet_warmboot",
      .experiment = "FLEET",
      .title = "warm-boot >= 8 shards from one snapshot, serve round-robin",
      .grid = {{.name = "shards", .values = {8, 16}}},
      .deterministic = false,  // cold_boot_ms / fork_ms read the host clock
      .default_seed = 0xF1EE'7000ull,
      .run_ctx = run_warmboot,
  });
  r.add(exp::ScenarioSpec{
      .name = "fleet_slo",
      .experiment = "FLEET",
      .title = "fault-armed fleet under full observability: SLO burn-rate "
               "alerts + flight-recorder dumps",
      .grid = {{.name = "shards", .values = {8}},
               {.name = "fault_ppm", .values = {100}}},
      .deterministic = false,  // host wall-time metrics, as above
      .default_seed = 0xF1EE'5107ull,
      .run_ctx = run_slo,
  });
}

}  // namespace ouessant::scenarios
