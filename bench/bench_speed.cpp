// Raw-simulator-speed guard: host cycles/sec with the event-batching
// optimizations on vs forced off.
//
// Three workloads cover the hot paths the batched-burst windows and the
// decoded-microcode cache accelerate:
//   idct_invoke   repeated 64-word IDCT invocations (E1's Table-I HW
//                 path, polling driver): short bursts + a fetch/decode-
//                 heavy microcode loop — the decode cache's best case.
//   burst_xfer    the discrete DMA engine (E5's baseline mover) bursting
//                 4096 words SRAM-to-SRAM at 256 beats/grant, interrupt
//                 driver: beat-dominated with every window batchable —
//                 the batched window's best case.
//   serve_multi   the offload service fanning jobs over 4 IDCT workers
//                 on one AHB (serve_multi_ocp's shape): contention,
//                 IRQs, and scheduler traffic mixed in.
//
// Each workload runs both configurations, proves the simulated clock is
// bit-identical (the optimizations must be invisible), and reports
// cycles/sec for both plus the ratio. Only the steady-state invocation
// loop is timed — SoC construction, program install, and the backdoor
// input load are identical host-side costs in both modes and would only
// dilute the ratio. Host-clock metrics make the scenario
// non-deterministic; run-to-run payload comparisons skip it.
// run_tier1.sh's speed-guard stage compares opt_cps against the
// committed BENCH_speed.json baseline.
#include "scenarios.hpp"

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "baseline/dma.hpp"
#include "drv/session.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/idct.hpp"
#include "svc/service.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

/// Force every optimization this PR added off, reproducing the per-beat,
/// per-decode tree. Gating stays on in both modes — it predates this
/// guard and has its own scenario (kernel_gating).
void strip_optimizations(platform::Soc& soc) {
  soc.bus().set_batching(false);
  for (std::size_t i = 0; i < soc.ocp_count(); ++i) {
    soc.ocp(i).controller().set_decode_cache(false);
  }
}

struct SpeedSample {
  u64 sim_cycles = 0;   ///< simulated cycles of ONE workload repetition
  double best_cps = 0;  ///< best cycles/sec over the repetitions
};

/// Repeat @p one_run (which returns {sim cycles, host seconds} for its
/// timed region) until @p budget_s of measured host time is spent, at
/// least twice, keeping the fastest repetition. Best-of is the right
/// statistic on a shared host: load spikes only ever slow a run down.
template <typename F>
SpeedSample measure(F&& one_run, double budget_s = 0.2) {
  SpeedSample s;
  double spent = 0;
  int reps = 0;
  while (spent < budget_s || reps < 2) {
    const auto [cycles, dt] = one_run();
    spent += dt;
    ++reps;
    s.sim_cycles = cycles;
    if (dt > 0) {
      const double cps = static_cast<double>(cycles) / dt;
      if (cps > s.best_cps) s.best_cps = cps;
    }
  }
  return s;
}

/// Time @p body; returns {simulated cycles elapsed, host seconds}.
template <typename F>
std::pair<u64, double> timed(sim::Kernel& k, F&& body) {
  const Cycle c0 = k.now();
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return {k.now() - c0, dt};
}

std::vector<u32> signal_words(u32 n, u32 seed) {
  util::Rng rng(seed);
  std::vector<u32> in(n);
  for (auto& w : in) {
    w = static_cast<u32>(util::to_word(rng.range(-30000, 30000)));
  }
  return in;
}

std::pair<u64, double> run_idct_invoke(bool optimized) {
  platform::Soc soc;
  rac::IdctRac idct(soc.kernel(), "idct");
  core::Ocp& ocp = soc.add_ocp(idct);
  if (!optimized) strip_optimizations(soc);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = 0x4000'0000,
                           .in_base = 0x4001'0000,
                           .out_base = 0x4002'0000,
                           .in_words = 64,
                           .out_words = 64});
  session.install(core::build_stream_program(
                      {.in_words = 64, .out_words = 64, .burst = 64}),
                  /*timed_program=*/false);
  session.put_input(signal_words(64, 7));
  // mvtc re-reads the same SRAM block each frame; nothing consumes it,
  // so the input is loaded once and the loop is pure invocation.
  return timed(soc.kernel(), [&] {
    for (int frame = 0; frame < 256; ++frame) session.run_poll();
  });
}

std::pair<u64, double> run_burst_xfer(bool optimized) {
  constexpr u32 kWords = 4096;
  constexpr Addr kSrc = 0x4010'0000;
  constexpr Addr kDst = 0x4020'0000;
  platform::Soc soc;
  baseline::DmaEngine dma(soc.kernel(), "dma", soc.bus(),
                          platform::kDmaBase);
  if (!optimized) strip_optimizations(soc);
  util::Rng rng(13);
  std::vector<u32> in(kWords);
  for (auto& w : in) w = rng.next_u32();
  soc.sram().load(kSrc, in);
  cpu::Gpp& gpp = soc.cpu();
  // Interrupt mode: the CPU sleeps on the IRQ line and the engine sleeps
  // while its port is busy, so each 256-beat window fast-forwards in one
  // jump when batching is on.
  return timed(soc.kernel(), [&] {
    for (int pass = 0; pass < 16; ++pass) {
      gpp.write32(dma.reg_base() + baseline::kDmaSrc, kSrc);
      gpp.write32(dma.reg_base() + baseline::kDmaDst, kDst);
      gpp.write32(dma.reg_base() + baseline::kDmaLen, kWords);
      gpp.write32(dma.reg_base() + baseline::kDmaBurst, 256);
      gpp.write32(dma.reg_base() + baseline::kDmaCtrl,
                  baseline::kDmaGo | baseline::kDmaIe);
      gpp.wait_for_irq(dma.irq());
      gpp.write32(dma.reg_base() + baseline::kDmaCtrl,
                  baseline::kDmaDone | baseline::kDmaIe);  // ack
    }
  });
}

std::pair<u64, double> run_serve_multi(bool optimized) {
  svc::ServiceConfig cfg;
  for (int i = 0; i < 4; ++i) {
    cfg.ocps.push_back(
        svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 1});
  }
  cfg.queue_depth = 256;
  svc::OffloadService service(std::move(cfg));
  if (!optimized) strip_optimizations(service.soc());
  svc::WorkloadConfig wl;
  wl.jobs = 160;
  wl.mean_gap = 40.0;
  wl.seed = svc::kDefaultServiceSeed;
  return timed(service.soc().kernel(), [&] { service.run(wl); });
}

void run_point(const exp::ParamMap& params, exp::Result& result) {
  const std::string& workload = params.get_str("workload");
  std::pair<u64, double> (*one)(bool) = nullptr;
  if (workload == "idct_invoke") {
    one = run_idct_invoke;
  } else if (workload == "burst_xfer") {
    one = run_burst_xfer;
  } else {
    one = run_serve_multi;
  }
  const SpeedSample opt = measure([&] { return one(true); });
  const SpeedSample base = measure([&] { return one(false); });
  if (opt.sim_cycles != base.sim_cycles) {
    result.fail("optimizations changed the simulated clock: " +
                std::to_string(opt.sim_cycles) + " vs " +
                std::to_string(base.sim_cycles) + " cycles");
  }
  result.add_metric("sim_cycles", opt.sim_cycles);
  result.add_metric("opt_cps", opt.best_cps);
  result.add_metric("base_cps", base.best_cps);
  result.add_metric("speedup", opt.best_cps / base.best_cps);
}

}  // namespace

void register_speed(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "sim_speed",
      .experiment = "guard",
      .title = "raw simulator speed: batched beats + decode cache on vs off",
      .grid = {{.name = "workload",
                .values = {"idct_invoke", "burst_xfer", "serve_multi"}}},
      .deterministic = false,
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
