// ouessant_bench — the single driver for every paper experiment.
//
// Replaces the fourteen per-experiment bench binaries: each experiment is
// now a registered scenario (see scenarios.hpp) and this driver expands,
// filters, runs and reports them.
//
//   ouessant_bench --list               show scenarios and grid sizes
//   ouessant_bench                      run everything, print tables
//   ouessant_bench --filter e4,e5      substring filter (name/E-id/title)
//   ouessant_bench --jobs 8             parallel sweep, deterministic output
//   ouessant_bench --json out.json      persist results (ouessant.sweep.v1)
//   ouessant_bench --compare-jobs 4     run twice (jobs=1, jobs=4), check
//                                       payload bit-identity, record both
//                                       wall clocks + speedup in the JSON
//   ouessant_bench --seed 42            override the built-in seed of every
//                                       seeded (run_ctx) scenario
//   ouessant_bench --trace STEM         write STEM_<scenario>_<point>.vcd
//                                       for every seeded scenario run
//   ouessant_bench --trace-events STEM  write Chrome trace-event JSON
//                                       (STEM_<scenario>_<point>.trace.json
//                                       + .metrics.json time-series) for
//                                       every seeded scenario run; view
//                                       with ouessant_trace or Perfetto
//   ouessant_bench --faults SPEC        override the fault plan of every
//                                       fault-aware (serve_faulty)
//                                       scenario (grammar: docs/robustness.md)
//   ouessant_bench --snapshot STEM      write STEM_<scenario>_<point>.snap
//                                       (final service state) for every
//                                       snapshot-aware (serve_*) run
//   ouessant_bench --restore FILE       warm-boot every snapshot-aware run
//                                       from FILE instead of cold-booting;
//                                       use --filter to select the
//                                       configuration FILE was saved from
//   ouessant_bench --chain MODE         force every chain-aware (chain_*,
//                                       serve_jpeg) run to MODE ("linked"
//                                       or "store_forward") instead of its
//                                       built-in grid (docs/chaining.md)
//   ouessant_bench --help               print this usage on stdout
//
// Exit status is non-zero when any scenario run fails an invariant or the
// --compare-jobs identity check trips.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exp/param.hpp"
#include "exp/sweep.hpp"
#include "scenarios.hpp"

namespace {

using namespace ouessant;

struct Options {
  bool list = false;
  bool help = false;
  std::string filter;
  int jobs = 1;
  int compare_jobs = 0;  // 0 = off
  std::string json_path;
  std::optional<ouessant::u64> seed;
  std::string trace_stem;
  std::string trace_events_stem;
  std::string faults;
  std::string snapshot_stem;
  std::string restore_path;
  std::string chain;
};

/// The one flag list, printed to stdout for --help (exit 0) and stderr
/// on a parse error (exit 2). scripts/check_docs.sh scrapes the --help
/// output to prove EXPERIMENTS.md documents every flag — keep the two
/// in sync.
void usage(const char* argv0, std::FILE* to) {
  std::fprintf(to,
               "usage: %s [--help] [--list] [--filter SUBSTR[,SUBSTR...]]\n"
               "          [--jobs N] [--json PATH] [--compare-jobs N]\n"
               "          [--seed U64] [--trace STEM] [--trace-events STEM]\n"
               "          [--faults SPEC] [--snapshot STEM] [--restore FILE]\n"
               "          [--chain linked|store_forward]\n",
               argv0);
}

bool parse_int(const char* s, int* out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1 || v > 1024) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_u64(const char* s, ouessant::u64* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0' || errno != 0) return false;
  *out = static_cast<ouessant::u64>(v);
  return true;
}

bool parse_args(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      opt->list = true;
    } else if (arg == "--help" || arg == "-h") {
      opt->help = true;
    } else if (arg == "--faults") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->faults = v;
    } else if (arg == "--filter") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->filter = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, &opt->jobs)) return false;
    } else if (arg == "--compare-jobs") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, &opt->compare_jobs)) return false;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->json_path = v;
    } else if (arg == "--seed") {
      const char* v = next();
      ouessant::u64 seed = 0;
      if (v == nullptr || !parse_u64(v, &seed)) return false;
      opt->seed = seed;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->trace_stem = v;
    } else if (arg == "--trace-events") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->trace_events_stem = v;
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->snapshot_stem = v;
    } else if (arg == "--restore") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->restore_path = v;
    } else if (arg == "--chain") {
      const char* v = next();
      if (v == nullptr ||
          (std::string(v) != "linked" && std::string(v) != "store_forward")) {
        return false;
      }
      opt->chain = v;
    } else {
      usage(argv[0], stderr);
      return false;
    }
  }
  return true;
}

void list_scenarios(const exp::Registry& registry,
                    const std::string& filter) {
  std::printf("%-16s %-6s %7s  %s\n", "scenario", "exp", "points", "title");
  for (const auto& spec : registry.scenarios()) {
    if (!exp::matches_filter(spec, filter)) continue;
    std::printf("%-16s %-6s %7zu  %s\n", spec.name.c_str(),
                spec.experiment.c_str(), spec.point_count(),
                spec.title.c_str());
  }
}

void print_tables(const exp::Registry& registry,
                  const std::vector<exp::Result>& results) {
  for (const auto& spec : registry.scenarios()) {
    std::vector<exp::Result> rows;
    for (const auto& r : results) {
      if (r.scenario == spec.name) rows.push_back(r);
    }
    if (rows.empty()) continue;
    std::printf("== %s [%s] %s ==\n", spec.name.c_str(),
                spec.experiment.c_str(), spec.title.c_str());
    std::fputs(exp::render_table(rows).c_str(), stdout);
    std::printf("\n");
  }
}

std::string fmt_seconds(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string fmt_ratio(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// True when at least one registered scenario passes @p filter. A filter
/// that matches nothing is a user error (typo, stale name): running an
/// empty sweep and exiting 0 would let a CI guard silently guard nothing.
bool any_scenario_matches(const exp::Registry& registry,
                          const std::string& filter) {
  for (const auto& spec : registry.scenarios()) {
    if (exp::matches_filter(spec, filter)) return true;
  }
  return false;
}

/// Payload identity between two equally-expanded sweeps, skipping
/// scenarios whose metrics read the host clock.
bool payloads_identical(const std::vector<exp::SweepJob>& jobs,
                        const std::vector<exp::Result>& a,
                        const std::vector<exp::Result>& b) {
  if (a.size() != jobs.size() || b.size() != jobs.size()) return false;
  bool identical = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!jobs[i].spec->deterministic) continue;
    if (!same_payload(a[i], b[i])) {
      std::fprintf(stderr,
                   "compare-jobs: payload mismatch at job %zu (%s %s)\n", i,
                   a[i].scenario.c_str(), a[i].params.str().c_str());
      identical = false;
    }
  }
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage(argv[0], stdout);
    return 0;
  }

  exp::Registry registry;
  scenarios::register_all_scenarios(registry);

  if (opt.list) {
    list_scenarios(registry, opt.filter);
    return 0;
  }

  if (!opt.filter.empty() && !any_scenario_matches(registry, opt.filter)) {
    std::fprintf(stderr,
                 "ouessant_bench: no scenarios matched --filter \"%s\"\n"
                 "available scenarios:\n",
                 opt.filter.c_str());
    for (const auto& spec : registry.scenarios()) {
      std::fprintf(stderr, "  %s\n", spec.name.c_str());
    }
    return 2;
  }

  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::vector<std::string> meta;
  meta.push_back("\"host_cpus\": " + std::to_string(host_cpus));
  // All free-form strings go through exp::json_escape — a filter (or any
  // future meta value) containing a quote or backslash must not corrupt
  // the document.
  meta.push_back("\"filter\": \"" + exp::json_escape(opt.filter) + "\"");
  if (opt.seed) {
    meta.push_back("\"seed\": " + std::to_string(*opt.seed));
  }

  try {
    if (opt.compare_jobs > 0) {
      const auto jobs = exp::expand_jobs(registry, opt.filter);
      const auto serial = exp::run_sweep(
          registry, {.jobs = 1,
                     .filter = opt.filter,
                     .seed = opt.seed,
                     .trace_stem = opt.trace_stem,
                     .trace_events_stem = opt.trace_events_stem,
                     .faults = opt.faults,
                     .snapshot_stem = opt.snapshot_stem,
                     .restore_path = opt.restore_path,
                     .chain = opt.chain});
      const auto parallel = exp::run_sweep(
          registry, {.jobs = opt.compare_jobs,
                     .filter = opt.filter,
                     .seed = opt.seed,
                     .trace_stem = opt.trace_stem,
                     .trace_events_stem = opt.trace_events_stem,
                     .faults = opt.faults,
                     .snapshot_stem = opt.snapshot_stem,
                     .restore_path = opt.restore_path,
                     .chain = opt.chain});
      const bool identical =
          payloads_identical(jobs, serial.results, parallel.results);
      const double speedup = serial.wall_seconds / parallel.wall_seconds;

      print_tables(registry, serial.results);
      std::printf("sweep: %zu runs | jobs=1 %.3fs | jobs=%d %.3fs | "
                  "speedup %.2fx (host has %u CPUs) | payloads %s\n",
                  serial.results.size(), serial.wall_seconds,
                  opt.compare_jobs, parallel.wall_seconds, speedup,
                  host_cpus, identical ? "identical" : "MISMATCH");

      meta.push_back("\"jobs\": " + std::to_string(opt.compare_jobs));
      meta.push_back("\"wall_seconds_jobs1\": " +
                     fmt_seconds(serial.wall_seconds));
      meta.push_back("\"wall_seconds_jobsN\": " +
                     fmt_seconds(parallel.wall_seconds));
      meta.push_back("\"speedup\": " + fmt_ratio(speedup));
      meta.push_back(std::string("\"payloads_identical\": ") +
                     (identical ? "true" : "false"));
      if (!opt.json_path.empty()) {
        exp::write_json(opt.json_path, serial.results, meta);
      }
      if (!identical || !serial.all_ok() || !parallel.all_ok()) return 1;
      return 0;
    }

    const auto outcome = exp::run_sweep(
        registry, {.jobs = opt.jobs,
                   .filter = opt.filter,
                   .seed = opt.seed,
                   .trace_stem = opt.trace_stem,
                   .trace_events_stem = opt.trace_events_stem,
                   .faults = opt.faults,
                   .snapshot_stem = opt.snapshot_stem,
                   .restore_path = opt.restore_path,
                   .chain = opt.chain});
    print_tables(registry, outcome.results);
    std::printf("sweep: %zu runs | jobs=%d | %.3fs | %zu failed\n",
                outcome.results.size(), outcome.jobs, outcome.wall_seconds,
                outcome.failed);
    for (const auto& r : outcome.results) {
      if (!r.ok) {
        std::fprintf(stderr, "FAIL %s %s: %s\n", r.scenario.c_str(),
                     r.params.str().c_str(), r.error.c_str());
      }
    }

    meta.push_back("\"jobs\": " + std::to_string(outcome.jobs));
    meta.push_back("\"wall_seconds\": " + fmt_seconds(outcome.wall_seconds));
    if (!opt.json_path.empty()) {
      exp::write_json(opt.json_path, outcome.results, meta);
    }
    return outcome.all_ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ouessant_bench: %s\n", e.what());
    return 2;
  }
}
