// E12 (scalability ablation) — how many coprocessors can one AHB carry?
//
// §II-B's MPSoC argument says Ouessant scales by instantiating more OCPs
// on the bus (unlike per-CPU coupling). The shared single-layer bus is
// then the ceiling. This bench launches 1..4 identical streaming OCPs
// concurrently on independent buffers and reports the aggregate
// throughput, per-OCP completion latency, and bus utilization — exposing
// where the fabric saturates and what fixed-priority arbitration does to
// the losers.
#include <cstdio>

#include <memory>

#include "drv/session.hpp"
#include "ouessant/codegen.hpp"
#include "platform/report.hpp"
#include "platform/soc.hpp"
#include "rac/fir.hpp"
#include "util/rng.hpp"

namespace {

using namespace ouessant;

constexpr u32 kWords = 512;

struct Result {
  u64 makespan = 0;            ///< all OCPs done
  u64 slowest_latency = 0;     ///< worst single-OCP completion
  double bus_util = 0.0;
  double words_per_kcycle = 0.0;
};

Result run(u32 n_ocps) {
  platform::Soc soc;
  std::vector<std::unique_ptr<rac::FirRac>> racs;
  std::vector<std::unique_ptr<drv::OcpSession>> sessions;
  util::Rng rng(n_ocps);

  for (u32 i = 0; i < n_ocps; ++i) {
    racs.push_back(std::make_unique<rac::FirRac>(
        soc.kernel(), "fir" + std::to_string(i),
        std::vector<i32>{i32{1} << 16}, kWords));  // streaming identity
    core::Ocp& ocp = soc.add_ocp(*racs.back());
    const Addr base = 0x4010'0000 + i * 0x10'0000;
    sessions.push_back(std::make_unique<drv::OcpSession>(
        soc.cpu(), soc.sram(), ocp,
        drv::SessionLayout{.prog_base = base,
                           .in_base = base + 0x1'0000,
                           .out_base = base + 0x2'0000,
                           .in_words = kWords,
                           .out_words = kWords}));
    sessions.back()->install(
        core::build_stream_program(
            {.in_words = kWords, .out_words = kWords, .burst = 64}),
        /*timed_program=*/false);
    std::vector<u32> in(kWords);
    for (auto& w : in) w = rng.next_u32();
    sessions.back()->put_input(in);
    sessions.back()->driver().enable_irq(true);
  }

  const Cycle t0 = soc.kernel().now();
  for (auto& s : sessions) s->start_async();
  Result r;
  for (auto& s : sessions) {
    s->driver().wait_done_irq(10'000'000);
    r.slowest_latency = std::max(r.slowest_latency, soc.kernel().now() - t0);
  }
  r.makespan = soc.kernel().now() - t0;
  const auto report = platform::make_report(soc);
  // Utilization over the contended window only.
  r.bus_util = static_cast<double>(soc.bus().busy_cycles()) /
               static_cast<double>(soc.kernel().now());
  r.words_per_kcycle = 1000.0 * 2.0 * kWords * n_ocps /
                       static_cast<double>(r.makespan);
  (void)report;
  return r;
}

}  // namespace

int main() {
  std::printf("E12: concurrent OCPs sharing one AHB (512-word streaming "
              "jobs, fixed-priority)\n\n");
  std::printf("%-6s %10s %14s %12s %16s\n", "OCPs", "makespan",
              "slowest done", "bus util", "words/kcycle");
  double single = 0;
  for (u32 n = 1; n <= 4; ++n) {
    const Result r = run(n);
    if (n == 1) single = static_cast<double>(r.makespan);
    std::printf("%-6u %10llu %14llu %11.1f%% %16.1f\n", n,
                static_cast<unsigned long long>(r.makespan),
                static_cast<unsigned long long>(r.slowest_latency),
                100.0 * r.bus_util, r.words_per_kcycle);
    if (n == 4) {
      std::printf("\nscaling: 4 OCPs take %.2fx the single-OCP makespan "
                  "(perfect sharing would be 4.00x\nonce the bus "
                  "saturates; below that means the single job was not "
                  "bus-bound).\n",
                  static_cast<double>(r.makespan) / single);
    }
  }
  return 0;
}
