// E12 (scalability ablation) — how many coprocessors can one AHB carry?
//
// §II-B's MPSoC argument says Ouessant scales by instantiating more OCPs
// on the bus (unlike per-CPU coupling). The shared single-layer bus is
// then the ceiling. This scenario launches 1..4 identical streaming OCPs
// concurrently on independent buffers and reports the aggregate
// throughput, per-OCP completion latency, and bus utilization — exposing
// where the fabric saturates and what fixed-priority arbitration does to
// the losers.
#include "scenarios.hpp"

#include <algorithm>
#include <memory>

#include "drv/session.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "platform/report.hpp"
#include "platform/soc.hpp"
#include "rac/fir.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

constexpr u32 kWords = 512;

void run_point(const exp::ParamMap& params, exp::Result& result) {
  const u32 n_ocps = params.get_u32("ocps");
  platform::Soc soc;
  std::vector<std::unique_ptr<rac::FirRac>> racs;
  std::vector<std::unique_ptr<drv::OcpSession>> sessions;
  util::Rng rng(n_ocps);

  for (u32 i = 0; i < n_ocps; ++i) {
    racs.push_back(std::make_unique<rac::FirRac>(
        soc.kernel(), "fir" + std::to_string(i),
        std::vector<i32>{i32{1} << 16}, kWords));  // streaming identity
    core::Ocp& ocp = soc.add_ocp(*racs.back());
    const Addr base = 0x4010'0000 + i * 0x10'0000;
    sessions.push_back(std::make_unique<drv::OcpSession>(
        soc.cpu(), soc.sram(), ocp,
        drv::SessionLayout{.prog_base = base,
                           .in_base = base + 0x1'0000,
                           .out_base = base + 0x2'0000,
                           .in_words = kWords,
                           .out_words = kWords}));
    sessions.back()->install(
        core::build_stream_program(
            {.in_words = kWords, .out_words = kWords, .burst = 64}),
        /*timed_program=*/false);
    std::vector<u32> in(kWords);
    for (auto& w : in) w = rng.next_u32();
    sessions.back()->put_input(in);
    sessions.back()->driver().enable_irq(true);
  }

  const Cycle t0 = soc.kernel().now();
  for (auto& s : sessions) s->start_async();
  u64 slowest = 0;
  for (auto& s : sessions) {
    s->driver().wait_done_irq(10'000'000);
    slowest = std::max(slowest, soc.kernel().now() - t0);
  }
  const u64 makespan = soc.kernel().now() - t0;
  // Utilization over the contended window only.
  const double bus_util = static_cast<double>(soc.bus().busy_cycles()) /
                          static_cast<double>(soc.kernel().now());
  result.add_metric("makespan", makespan);
  result.add_metric("slowest", slowest);
  result.add_metric("bus_util_pct", 100.0 * bus_util);
  result.add_metric("words_per_kcycle",
                    1000.0 * 2.0 * kWords * n_ocps /
                        static_cast<double>(makespan));
  result.add_utilization(platform::make_report(soc));
  obs::validate_soc_ledger(soc);
}

}  // namespace

void register_e12_contention(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e12_contention",
      .experiment = "E12",
      .title = "concurrent OCPs sharing one AHB (512-word streaming jobs)",
      .grid = {{.name = "ocps", .values = {1, 2, 3, 4}}},
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
