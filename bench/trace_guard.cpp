// trace_guard — the tier-1 observability invariants, as one binary:
//
//   1. PASSIVITY. The same mixed serve workload runs twice at the same
//      seed, once bare and once with the full observability stack
//      attached (EventTracer through every layer, MetricsSampler, and a
//      CycleLedger proof at the end). The traced run must be
//      bit-identical to the untraced one: same simulated clock, same
//      Stats::all() counter map, same per-job end-to-end samples.
//   2. OVERHEAD. Tracing is allowed to cost host time, but not much:
//      the traced run must finish within 2x the untraced host time plus
//      a fixed slack floor (the floor keeps sub-millisecond runs from
//      flaking on scheduler noise).
//
// On success the trace is left at the path given by argv[1] (default
// trace_guard.trace.json) so the caller can smoke-test ouessant_trace
// on a real file — which is exactly what scripts/run_tier1.sh does.
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "obs/collect.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "svc/service.hpp"

namespace {

using namespace ouessant;

constexpr u64 kMetricsPeriod = 64;
constexpr double kHostFactor = 2.0;
constexpr double kHostSlackSeconds = 0.25;

svc::ServiceConfig make_config() {
  svc::ServiceConfig cfg;
  cfg.ocps = {svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 2},
              svc::OcpSpec{.kind = svc::JobKind::kDft, .max_batch = 2},
              svc::OcpSpec{.kind = svc::JobKind::kFir, .max_batch = 2}};
  cfg.queue_depth = 128;
  return cfg;
}

svc::WorkloadConfig make_workload() {
  svc::WorkloadConfig wl;
  wl.jobs = 120;
  wl.mean_gap = 200.0;
  wl.kinds = {svc::JobKind::kIdct, svc::JobKind::kDft, svc::JobKind::kFir};
  wl.high_fraction = 0.25;
  return wl;
}

struct RunSnapshot {
  Cycle cycles = 0;
  std::map<std::string, u64> stats;
  std::vector<u64> e2e;
  u64 completed = 0;
  double host_seconds = 0.0;
  std::size_t trace_events = 0;
};

RunSnapshot run_once(const std::string& trace_path) {
  const auto t0 = std::chrono::steady_clock::now();
  svc::OffloadService service(make_config());
  std::unique_ptr<obs::EventTracer> tracer;
  std::unique_ptr<obs::MetricsSampler> metrics;
  if (!trace_path.empty()) {
    tracer = std::make_unique<obs::EventTracer>(service.soc().kernel());
    service.attach_tracer(*tracer);
    metrics = std::make_unique<obs::MetricsSampler>(service.soc().kernel(),
                                                    kMetricsPeriod);
    service.attach_metrics(*metrics);
  }
  const svc::ServiceReport rep = service.run(make_workload());
  RunSnapshot snap;
  snap.cycles = service.soc().kernel().now();
  snap.stats = service.soc().kernel().stats().all();
  // The published speed counters are allowed to differ: an attached
  // tracer forces the per-beat bus path, so batched_chunks drops to
  // zero by design. Everything else must be bit-identical.
  for (auto it = snap.stats.begin(); it != snap.stats.end();) {
    const std::string& key = it->first;
    const bool speed_counter = key.ends_with(".batched_chunks") ||
                               key.ends_with(".decode_hits") ||
                               key.ends_with(".decode_misses");
    it = speed_counter ? snap.stats.erase(it) : std::next(it);
  }
  snap.e2e = rep.e2e.samples();
  snap.completed = rep.completed;
  if (tracer != nullptr) {
    obs::validate_soc_ledger(service.soc());
    tracer->write_json(trace_path);
    metrics->write_json(trace_path + ".metrics.json");
    snap.trace_events = tracer->event_count();
  }
  snap.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return snap;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1] : "trace_guard.trace.json";
  try {
    const RunSnapshot bare = run_once("");
    const RunSnapshot traced = run_once(trace_path);

    int failures = 0;
    if (bare.cycles != traced.cycles) {
      std::fprintf(stderr,
                   "trace_guard: sim clock diverged: untraced %llu, "
                   "traced %llu\n",
                   static_cast<unsigned long long>(bare.cycles),
                   static_cast<unsigned long long>(traced.cycles));
      ++failures;
    }
    if (bare.stats != traced.stats) {
      std::fprintf(stderr, "trace_guard: Stats::all() diverged\n");
      for (const auto& [key, value] : bare.stats) {
        const auto it = traced.stats.find(key);
        if (it == traced.stats.end() || it->second != value) {
          std::fprintf(stderr, "  %s: untraced %llu traced %llu\n",
                       key.c_str(), static_cast<unsigned long long>(value),
                       static_cast<unsigned long long>(
                           it == traced.stats.end() ? 0 : it->second));
        }
      }
      for (const auto& [key, value] : traced.stats) {
        if (bare.stats.find(key) == bare.stats.end()) {
          std::fprintf(stderr, "  %s: only in traced (%llu)\n", key.c_str(),
                       static_cast<unsigned long long>(value));
        }
      }
      ++failures;
    }
    if (bare.e2e != traced.e2e) {
      std::fprintf(stderr,
                   "trace_guard: per-job latency histograms diverged "
                   "(%zu vs %zu samples)\n",
                   bare.e2e.size(), traced.e2e.size());
      ++failures;
    }
    const double budget =
        kHostFactor * bare.host_seconds + kHostSlackSeconds;
    if (traced.host_seconds > budget) {
      std::fprintf(stderr,
                   "trace_guard: tracing overhead over budget: untraced "
                   "%.3fs, traced %.3fs, budget %.3fs\n",
                   bare.host_seconds, traced.host_seconds, budget);
      ++failures;
    }

    std::printf(
        "trace_guard: %llu jobs, %llu sim cycles, %zu trace events | "
        "untraced %.3fs, traced %.3fs (budget %.3fs) | %s\n",
        static_cast<unsigned long long>(traced.completed),
        static_cast<unsigned long long>(traced.cycles), traced.trace_events,
        bare.host_seconds, traced.host_seconds, budget,
        failures == 0 ? "OK" : "FAIL");
    std::printf("trace written to %s\n", trace_path.c_str());
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_guard: %s\n", e.what());
    return 2;
  }
}
