// DPRF (reconfigurable slot farm) — src/dpr + the svc SlotManager under
// shifting demand (docs/reconfiguration.md, DESIGN.md §14).
//
// Three scenarios, each on a fresh SoC per grid point:
//   dpr_adapt  two slots, three candidate kernels {IDCT, DFT, FIR} —
//              more kinds than fabric. Demand shifts mid-run onto FIR,
//              which the static residency never loaded: static refuses
//              those jobs at the door, the schedulers swap a slot over.
//              Availability under the shifted mix is the headline.
//   dpr_slots  1/2/4 slots under a uniform four-kind mix with the
//              hysteresis scheduler: how much farm does a mixed workload
//              need, and how swap traffic falls as slots stop contending.
//   dpr_icap   the configuration-port ablation: the same oscillating
//              workload with the bitstream path either bus-mastered
//              (shared, contends with job DMA) or free (seed-style
//              countdown), crossed with the staging cache on/off. The
//              shared-vs-free makespan gap IS the cost of honest
//              reconfiguration timing; cache hits claw some of it back.
//
// Every point closes with the extended ledger proof — the ICAP track
// included — so reconfiguration cycles are attributed, not assumed.
#include "scenarios.hpp"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/collect.hpp"
#include "obs/tracer.hpp"
#include "svc/service.hpp"

namespace ouessant::scenarios {
namespace {

/// Run @p service over @p schedule with the standard trace wiring, then
/// flatten the report + farm counters and prove the extended ledger.
void farm_point(svc::OffloadService& service, std::vector<svc::Job> schedule,
                const exp::RunContext& ctx, exp::Result& result) {
  std::unique_ptr<sim::VcdTrace> trace;
  if (!ctx.trace_path.empty()) {
    trace = std::make_unique<sim::VcdTrace>(service.soc().kernel(),
                                            ctx.trace_path, "dprf");
    service.attach_trace(*trace);
  }
  std::unique_ptr<obs::EventTracer> tracer;
  if (!ctx.trace_events_path.empty()) {
    tracer = std::make_unique<obs::EventTracer>(service.soc().kernel());
    service.attach_tracer(*tracer);
  }
  const svc::ServiceReport rep = service.run_schedule(std::move(schedule));
  rep.add_to(result);
  obs::validate_soc_ledger(service.soc(), *service.icap());
  if (tracer != nullptr) {
    tracer->write_json(ctx.trace_events_path);
    result.add_metric("trace_events", static_cast<u64>(tracer->event_count()));
  }
  const bus::MasterStats& icap = service.icap()->master_stats();
  result.add_metric("icap_wait_cycles", icap.wait_cycles + icap.stall_cycles);
  if (rep.completed + rep.rejected != rep.jobs) {
    result.fail("farm lost jobs: completed " + std::to_string(rep.completed) +
                " + rejected " + std::to_string(rep.rejected) +
                " != " + std::to_string(rep.jobs));
  }
  if (rep.swaps_started != rep.swaps_completed) {
    result.fail("swap left in flight past finish()");
  }
}

/// dpr_adapt: two slots of fabric, three candidate kernels — more kinds
/// than area, the paper's case for partial reconfiguration. Phase 1 is a
/// balanced IDCT/DFT mix the initial residency {IDCT, DFT} serves
/// perfectly; phase 2 shifts half the demand onto FIR, a kernel the
/// static farm never loaded. Static refuses every FIR job at the door
/// (fixed-function ENOSYS — the honest baseline, not a crash); the
/// schedulers buy FIR a slot with one bitstream swap and keep the
/// leftover DFT trickle alive with occasional rescue rotations.
void run_adapt(const exp::ParamMap& params, const exp::RunContext& ctx,
               exp::Result& result) {
  constexpr u32 kPhase1Jobs = 200;
  constexpr u32 kPhase2Jobs = 800;
  svc::ServiceConfig cfg;
  cfg.ocps.clear();
  cfg.queue_depth = 128;
  cfg.slots.count = 2;
  cfg.slots.candidates = {svc::JobKind::kIdct, svc::JobKind::kDft,
                          svc::JobKind::kFir};
  cfg.slots.initial = {svc::JobKind::kIdct, svc::JobKind::kDft};
  cfg.slots.policy = svc::policy_from_name(params.get_str("policy"));
  cfg.slots.min_residency = 20'000;
  cfg.slots.switch_margin = 3.0;
  // The farm keeps its working set of partial bitstreams staged: swaps
  // after the first per image stream from the cache instead of re-walking
  // SRAM over the contended bus (the dpr_icap scenario ablates this).
  cfg.slots.cache_bytes = 256 * 1024;
  cfg.slots.icap_burst_words = 256;

  const double gap = 380.0;
  const std::vector<svc::WorkloadPhase> phases = {
      {.jobs = kPhase1Jobs,
       .mean_gap = gap,
       .mix = {{svc::JobKind::kIdct, 5.0}, {svc::JobKind::kDft, 5.0}}},
      {.jobs = kPhase2Jobs,
       .mean_gap = gap,
       .mix = {{svc::JobKind::kIdct, 4.0},
               {svc::JobKind::kFir, 5.0},
               {svc::JobKind::kDft, 1.0}}},
  };
  svc::OffloadService service(std::move(cfg));

  // Per-phase latency through the completion observer: job ids are
  // sequential across phases, so the id alone names the phase.
  svc::LatencyStats phase_e2e[2];
  u64 phase_done[2] = {0, 0};
  service.set_job_observer([&](const svc::Job& job) {
    const int ph = job.id < kPhase1Jobs ? 0 : 1;
    phase_e2e[ph].add(job.end_to_end());
    ++phase_done[ph];
  });
  farm_point(service, svc::phased_arrivals(phases, ctx.seed, /*start=*/64),
             ctx, result);
  for (int ph = 0; ph < 2; ++ph) {
    const std::string p = "phase" + std::to_string(ph + 1);
    result.add_metric(p + "_completed", phase_done[ph]);
    result.add_metric(p + "_availability",
                      static_cast<double>(phase_done[ph]) /
                          (ph == 0 ? kPhase1Jobs : kPhase2Jobs));
    result.add_metric(p + "_e2e_p99", phase_e2e[ph].percentile(99.0));
  }
}

/// dpr_slots: a uniform four-kind mix over 1/2/4 hysteresis slots.
/// Every kind must eventually be served no matter how few slots exist —
/// the scheduler's liveness, not just its throughput, is on the line.
void run_slots(const exp::ParamMap& params, const exp::RunContext& ctx,
               exp::Result& result) {
  svc::ServiceConfig cfg;
  cfg.ocps.clear();
  cfg.queue_depth = 256;
  cfg.slots.count = params.get_u32("slots");
  cfg.slots.policy = svc::SwapPolicy::kHysteresis;

  const std::vector<svc::WorkloadPhase> phases = {
      {.jobs = 96,
       .mean_gap = 600.0,
       .mix = {{svc::JobKind::kIdct, 1.0},
               {svc::JobKind::kDft, 1.0},
               {svc::JobKind::kFir, 1.0},
               {svc::JobKind::kJpegBlock, 1.0}}},
  };
  svc::OffloadService service(std::move(cfg));
  farm_point(service, svc::phased_arrivals(phases, ctx.seed, /*start=*/64),
             ctx, result);
  if (result.metrics.get_int("completed") != 96) {
    result.fail("a job kind starved under the swap scheduler");
  }
}

/// dpr_icap: four oscillating 60-job phases force repeated re-loads of
/// the same per-slot images. Axes: bitstream path (shared bus master vs
/// seed-style free countdown) x staging cache (off / big enough for the
/// whole image set).
void run_icap(const exp::ParamMap& params, const exp::RunContext& ctx,
              exp::Result& result) {
  svc::ServiceConfig cfg;
  cfg.ocps.clear();
  cfg.queue_depth = 256;
  cfg.slots.count = 2;
  cfg.slots.candidates = {svc::JobKind::kIdct, svc::JobKind::kDft};
  cfg.slots.initial = {svc::JobKind::kIdct, svc::JobKind::kDft};
  cfg.slots.policy = svc::SwapPolicy::kGreedyQueueDepth;
  cfg.slots.shared_icap = params.get_str("icap") == "shared";
  cfg.slots.cache_bytes = params.get_u32("cache_kb") * 1024;

  std::vector<svc::WorkloadPhase> phases;
  for (int ph = 0; ph < 4; ++ph) {
    const double hot = (ph % 2 == 0) ? 9.0 : 1.0;
    phases.push_back({.jobs = 60,
                      .mean_gap = 260.0,
                      .mix = {{svc::JobKind::kIdct, hot},
                              {svc::JobKind::kDft, 10.0 - hot}}});
  }
  svc::OffloadService service(std::move(cfg));
  farm_point(service, svc::phased_arrivals(phases, ctx.seed, /*start=*/64),
             ctx, result);
}

}  // namespace

void register_dpr_farm(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "dpr_adapt",
      .experiment = "DPRF",
      .title = "2 slots, 3 kernels: demand shifts onto an unprovisioned "
               "kind, by policy",
      .grid = {{.name = "policy", .values = {"static", "greedy",
                                             "hysteresis"}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_adapt,
  });
  r.add(exp::ScenarioSpec{
      .name = "dpr_slots",
      .experiment = "DPRF",
      .title = "uniform 4-kind mix over 1/2/4 hysteresis slots",
      .grid = {{.name = "slots", .values = {1, 2, 4}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_slots,
  });
  r.add(exp::ScenarioSpec{
      .name = "dpr_icap",
      .experiment = "DPRF",
      .title = "bitstream path ablation: shared bus master vs free port, "
               "staging cache on/off",
      .grid = {{.name = "icap", .values = {"shared", "free"}},
               {.name = "cache_kb", .values = {0, 256}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_icap,
  });
}

}  // namespace ouessant::scenarios
