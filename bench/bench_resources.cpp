// E2 — reproduces §V-B's resource evaluation: synthesize each accelerator
// alone and with the OCP ("Keep Hierarchy" style), and check the paper's
// claims: the OCP machinery (interface + controller + FIFO control) stays
// under 1000 LUT / 750 FF, FIFO memory is inferred as BRAM, and the RAC
// size is independent of Ouessant.
#include <cstdio>

#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "rac/fir.hpp"
#include "rac/idct.hpp"

namespace {

using namespace ouessant;

void print_row(const char* name, const res::ResourceEstimate& e) {
  std::printf("%-28s %8u %8u %8u %8u\n", name, e.luts, e.ffs, e.bram36,
              e.dsps);
}

/// OCP machinery = everything except FIFO storage (the paper counts the
/// "FIFO control" but reports storage separately as BRAM).
res::ResourceEstimate ocp_machinery(const core::Ocp& ocp) {
  res::ResourceEstimate e;
  for (const auto& child : ocp.resource_tree().children) {
    e += child.self;
    for (const auto& part : child.children) {
      if (part.name == "storage") continue;
      e += part.total();
    }
  }
  return e;
}

res::ResourceEstimate fifo_storage(const core::Ocp& ocp) {
  res::ResourceEstimate e;
  for (const auto& child : ocp.resource_tree().children) {
    for (const auto& part : child.children) {
      if (part.name == "storage") e += part.total();
    }
  }
  return e;
}

template <typename MakeRac>
void report_config(const char* label, MakeRac make_rac) {
  // Accelerator alone.
  sim::Kernel lone_kernel;
  auto lone = make_rac(lone_kernel);
  const auto alone = lone->resource_tree().total();

  // Accelerator + OCP.
  platform::Soc soc;
  auto rac = make_rac(soc.kernel());
  core::Ocp& ocp = soc.add_ocp(*rac);
  const auto wrapped = ocp.full_resource_tree().total();
  const auto machinery = ocp_machinery(ocp);
  const auto storage = fifo_storage(ocp);

  std::printf("\n-- %s --\n", label);
  print_row("accelerator alone", alone);
  print_row("accelerator + OCP", wrapped);
  print_row("  of which OCP machinery", machinery);
  print_row("  of which FIFO storage", storage);
}

}  // namespace

int main() {
  std::printf("E2: resource footprint (Artix7-class estimates)\n");
  std::printf("%-28s %8s %8s %8s %8s\n", "configuration", "LUT", "FF",
              "BRAM", "DSP");

  report_config("2D IDCT (JPEG)", [](sim::Kernel& k) {
    return std::make_unique<rac::IdctRac>(k, "idct");
  });
  report_config("DFT 256 (Spiral-class)", [](sim::Kernel& k) {
    return std::make_unique<rac::DftRac>(k, "dft",
                                         rac::DftRacConfig{.points = 256});
  });
  report_config("FIR 16-tap", [](sim::Kernel& k) {
    return std::make_unique<rac::FirRac>(
        k, "fir", std::vector<i32>(16, 1 << 12), 256);
  });

  // Full Keep-Hierarchy report for the paper's headline configuration.
  {
    platform::Soc soc;
    rac::DftRac dft(soc.kernel(), "dft256", {.points = 256});
    core::Ocp& ocp = soc.add_ocp(dft);
    std::printf("\n-- Keep-Hierarchy report: DFT 256 + OCP --\n%s",
                res::render_report(ocp.full_resource_tree()).c_str());

    const auto machinery = ocp_machinery(ocp);
    std::printf("\npaper claim check: OCP machinery %u LUT (<1000), %u FF "
                "(<750): %s\n",
                machinery.luts, machinery.ffs,
                (machinery.luts < 1000 && machinery.ffs < 750) ? "PASS"
                                                               : "FAIL");
  }
  return 0;
}
