// E2 — reproduces §V-B's resource evaluation: synthesize each accelerator
// alone and with the OCP ("Keep Hierarchy" style), and check the paper's
// claims: the OCP machinery (interface + controller + FIFO control) stays
// under 1000 LUT / 750 FF, FIFO memory is inferred as BRAM, and the RAC
// size is independent of Ouessant.
#include "scenarios.hpp"

#include <memory>

#include "obs/collect.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "rac/fir.hpp"
#include "rac/idct.hpp"

namespace ouessant::scenarios {
namespace {

/// OCP machinery = everything except FIFO storage (the paper counts the
/// "FIFO control" but reports storage separately as BRAM).
res::ResourceEstimate ocp_machinery(const core::Ocp& ocp) {
  res::ResourceEstimate e;
  for (const auto& child : ocp.resource_tree().children) {
    e += child.self;
    for (const auto& part : child.children) {
      if (part.name == "storage") continue;
      e += part.total();
    }
  }
  return e;
}

res::ResourceEstimate fifo_storage(const core::Ocp& ocp) {
  res::ResourceEstimate e;
  for (const auto& child : ocp.resource_tree().children) {
    for (const auto& part : child.children) {
      if (part.name == "storage") e += part.total();
    }
  }
  return e;
}

std::unique_ptr<core::Rac> make_rac(sim::Kernel& k, const std::string& which) {
  if (which == "idct") return std::make_unique<rac::IdctRac>(k, "idct");
  if (which == "dft256") {
    return std::make_unique<rac::DftRac>(k, "dft",
                                         rac::DftRacConfig{.points = 256});
  }
  return std::make_unique<rac::FirRac>(k, "fir", std::vector<i32>(16, 1 << 12),
                                       256);
}

void add_estimate(exp::Result& result, const std::string& prefix,
                  const res::ResourceEstimate& e) {
  result.add_metric(prefix + "_lut", e.luts);
  result.add_metric(prefix + "_ff", e.ffs);
  result.add_metric(prefix + "_bram", e.bram36);
  result.add_metric(prefix + "_dsp", e.dsps);
}

void run_point(const exp::ParamMap& params, exp::Result& result) {
  const std::string& which = params.get_str("rac");

  // Accelerator alone.
  sim::Kernel lone_kernel;
  const auto alone = make_rac(lone_kernel, which)->resource_tree().total();

  // Accelerator + OCP.
  platform::Soc soc;
  auto rac = make_rac(soc.kernel(), which);
  core::Ocp& ocp = soc.add_ocp(*rac);
  const auto wrapped = ocp.full_resource_tree().total();
  const auto machinery = ocp_machinery(ocp);
  const auto storage = fifo_storage(ocp);

  add_estimate(result, "alone", alone);
  add_estimate(result, "wrapped", wrapped);
  add_estimate(result, "machinery", machinery);
  add_estimate(result, "storage", storage);

  // The paper's claims, checked on every configuration: machinery under
  // 1000 LUT / 750 FF, FIFO storage entirely in BRAM, and the RAC's own
  // numbers unchanged by the wrapper (wrapped == alone + OCP subtree).
  const bool claim = machinery.luts < 1000 && machinery.ffs < 750;
  result.add_metric("claim_pass", claim ? 1 : 0);
  if (!claim) {
    result.fail("OCP machinery exceeds the paper's <1000 LUT / <750 FF");
  }
  if (storage.luts != 0 || storage.ffs != 0) {
    result.fail("FIFO storage not inferred as pure BRAM");
  }
  obs::validate_soc_ledger(soc);  // trivial (wall = 0) but keeps the rule
}

}  // namespace

void register_e2_resources(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e2_resources",
      .experiment = "E2",
      .title = "resource footprint, accelerator alone vs +OCP (Artix7-class)",
      .grid = {{.name = "rac", .values = {"idct", "dft256", "fir16"}}},
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
