// Microbenchmarks (google-benchmark) for the simulator substrate itself:
// simulation throughput, FIFO conversion, encoding, assembly, and the
// transform datapaths. These guard the usability of the library (a slow
// simulator makes the experiment benches painful), not a paper result.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "drv/session.hpp"
#include "fifo/width_fifo.hpp"
#include "ouessant/assembler.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "rac/passthrough.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"
#include "util/transforms.hpp"

namespace {

using namespace ouessant;

void BM_KernelTickThroughput(benchmark::State& state) {
  platform::Soc soc;
  rac::PassthroughRac rac(soc.kernel(), "pass", 64, 32);
  soc.add_ocp(rac);
  for (auto _ : state) {
    soc.kernel().run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_KernelTickThroughput);

void BM_FifoWidthConversion(benchmark::State& state) {
  sim::Kernel kernel;
  fifo::WidthFifo f(kernel, "f", {.wr_width = 32, .rd_width = 48,
                                  .capacity_bits = 48 * 64});
  u64 x = 1;
  for (auto _ : state) {
    f.write(x++);
    kernel.tick();
    if (!f.empty()) benchmark::DoNotOptimize(f.read());
    kernel.tick();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoWidthConversion);

void BM_IsaEncodeDecode(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    isa::Instruction ins{.op = isa::Opcode::kMvtc,
                         .bank = static_cast<u8>(rng.below(8)),
                         .offset = rng.below(1u << 14),
                         .fifo = static_cast<u8>(rng.below(4)),
                         .len = 1 + rng.below(256)};
    benchmark::DoNotOptimize(isa::decode(isa::encode(ins)));
  }
}
BENCHMARK(BM_IsaEncodeDecode);

void BM_AssembleFigure4(benchmark::State& state) {
  const std::string src = core::disassemble(core::figure4_program().image());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::assemble(src));
  }
}
BENCHMARK(BM_AssembleFigure4);

void BM_FixedFft256(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<i32> re(256), im(256);
  for (u32 i = 0; i < 256; ++i) {
    re[i] = rng.range(-100000, 100000);
    im[i] = rng.range(-100000, 100000);
  }
  for (auto _ : state) {
    auto r = re;
    auto i2 = im;
    util::fixed_fft(r, i2);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FixedFft256);

void BM_FixedIdct8x8(benchmark::State& state) {
  util::Rng rng(8);
  i32 coef[64];
  for (auto& c : coef) c = rng.range(-1024, 1023);
  i32 pix[64];
  for (auto _ : state) {
    util::fixed_idct8x8(coef, pix);
    benchmark::DoNotOptimize(pix);
  }
}
BENCHMARK(BM_FixedIdct8x8);

void BM_EndToEndInvocation(benchmark::State& state) {
  platform::Soc soc;
  rac::PassthroughRac rac(soc.kernel(), "pass", 64, 32);
  core::Ocp& ocp = soc.add_ocp(rac);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = 0x4000'0000,
                           .in_base = 0x4001'0000,
                           .out_base = 0x4002'0000,
                           .in_words = 64,
                           .out_words = 64});
  session.install(core::build_stream_program(
                      {.in_words = 64, .out_words = 64, .burst = 64}),
                  /*timed_program=*/false);
  util::Rng rng(2);
  std::vector<u32> in(64);
  for (auto& w : in) w = rng.next_u32();
  for (auto _ : state) {
    session.put_input(in);
    benchmark::DoNotOptimize(session.run_poll());
  }
}
BENCHMARK(BM_EndToEndInvocation);

// ---------------------------------------------------------------------
// Kernel throughput guard: the idle-heavy scenario quiescence gating is
// built for — a duty-cycled 256-point DFT workload. Each frame moves the
// input block, blocks on exec (controller in exec-wait, bus idle, CPU
// asleep on the IRQ line — the ~2.5k-cycle compute countdown fast-
// forwards in one jump), drains the output, then the whole SoC idles
// until the next frame period. Runs the same workload with gating on
// and off, checks the simulated clocks agree bit-for-bit, and records
// host cycles/sec for both into BENCH_kernel.json so a regression in
// the fast-forward path shows up in CI transcripts.

/// Cycles between frame starts — the inter-job idle a periodic signal-
/// processing deployment spends waiting for the next buffer.
constexpr u64 kFramePeriodSlack = 20'000;

/// Runs @p invocations interrupt-mode DFT frames; returns {simulated
/// cycles consumed, host seconds}.
std::pair<u64, double> run_idle_heavy_dft(bool gating, int invocations) {
  platform::Soc soc;
  soc.kernel().set_gating(gating);
  rac::DftRac dft(soc.kernel(), "dft", {.points = 256});
  core::Ocp& ocp = soc.add_ocp(dft);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = 0x4000'0000,
                           .in_base = 0x4001'0000,
                           .out_base = 0x4002'0000,
                           .in_words = 512,
                           .out_words = 512});
  // overlap=false: move all input, block on exec, then move the output —
  // the exec window is a pure wait (controller in exec-wait, bus idle,
  // CPU asleep on the IRQ line), which is what gating fast-forwards.
  session.install(core::build_stream_program({.in_words = 512,
                                              .out_words = 512,
                                              .burst = 64,
                                              .overlap = false}),
                  /*timed_program=*/false);
  util::Rng rng(11);
  std::vector<u32> in(512);
  for (auto& w : in) {
    w = static_cast<u32>(util::to_word(rng.range(-30000, 30000)));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const Cycle c0 = soc.kernel().now();
  for (int i = 0; i < invocations; ++i) {
    session.put_input(in);
    session.run_irq();
    soc.cpu().spend(kFramePeriodSlack);  // idle until the next frame
  }
  const auto t1 = std::chrono::steady_clock::now();
  return {soc.kernel().now() - c0,
          std::chrono::duration<double>(t1 - t0).count()};
}

int kernel_throughput_guard() {
  constexpr int kInvocations = 50;
  const auto [gated_cycles, gated_s] =
      run_idle_heavy_dft(/*gating=*/true, kInvocations);
  const auto [ungated_cycles, ungated_s] =
      run_idle_heavy_dft(/*gating=*/false, kInvocations);
  if (gated_cycles != ungated_cycles) {
    std::fprintf(stderr,
                 "kernel guard: GATING CHANGED THE SIMULATED CLOCK "
                 "(gated %llu vs ungated %llu cycles)\n",
                 static_cast<unsigned long long>(gated_cycles),
                 static_cast<unsigned long long>(ungated_cycles));
    return 1;
  }
  const double gated_cps = static_cast<double>(gated_cycles) / gated_s;
  const double ungated_cps = static_cast<double>(ungated_cycles) / ungated_s;
  const double speedup = gated_cps / ungated_cps;
  std::printf(
      "\nkernel guard: idle-heavy 256-pt DFT, %d interrupt-mode "
      "invocations, %llu simulated cycles\n"
      "  gating on : %.3e cycles/sec\n"
      "  gating off: %.3e cycles/sec\n"
      "  speedup   : %.2fx (target >= 2x)\n",
      kInvocations, static_cast<unsigned long long>(gated_cycles),
      gated_cps, ungated_cps, speedup);
  if (FILE* f = std::fopen("BENCH_kernel.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"kernel_gating_guard\",\n"
                 "  \"scenario\": \"idle_heavy_dft256_irq\",\n"
                 "  \"invocations\": %d,\n"
                 "  \"sim_cycles\": %llu,\n"
                 "  \"gated_cycles_per_sec\": %.1f,\n"
                 "  \"ungated_cycles_per_sec\": %.1f,\n"
                 "  \"speedup\": %.3f\n"
                 "}\n",
                 kInvocations, static_cast<unsigned long long>(gated_cycles),
                 gated_cps, ungated_cps, speedup);
    std::fclose(f);
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "kernel guard: WARNING speedup %.2fx below the 2x "
                 "target (noisy host or fast-forward regression)\n",
                 speedup);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return kernel_throughput_guard();
}
