// Microbenchmarks (google-benchmark) for the simulator substrate itself:
// simulation throughput, FIFO conversion, encoding, assembly, and the
// transform datapaths. These guard the usability of the library (a slow
// simulator makes the experiment benches painful), not a paper result.
//
// The kernel quiescence-gating throughput guard that used to live here is
// now the "kernel_gating" scenario (bench_kernel_guard.cpp), run through
// ouessant_bench like every other experiment.
#include <benchmark/benchmark.h>

#include "drv/session.hpp"
#include "fifo/width_fifo.hpp"
#include "ouessant/assembler.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/passthrough.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"
#include "util/transforms.hpp"

namespace {

using namespace ouessant;

void BM_KernelTickThroughput(benchmark::State& state) {
  platform::Soc soc;
  rac::PassthroughRac rac(soc.kernel(), "pass", 64, 32);
  soc.add_ocp(rac);
  for (auto _ : state) {
    soc.kernel().run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_KernelTickThroughput);

void BM_FifoWidthConversion(benchmark::State& state) {
  sim::Kernel kernel;
  fifo::WidthFifo f(kernel, "f", {.wr_width = 32, .rd_width = 48,
                                  .capacity_bits = 48 * 64});
  u64 x = 1;
  for (auto _ : state) {
    f.write(x++);
    kernel.tick();
    if (!f.empty()) benchmark::DoNotOptimize(f.read());
    kernel.tick();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoWidthConversion);

void BM_IsaEncodeDecode(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    isa::Instruction ins{.op = isa::Opcode::kMvtc,
                         .bank = static_cast<u8>(rng.below(8)),
                         .offset = rng.below(1u << 14),
                         .fifo = static_cast<u8>(rng.below(4)),
                         .len = 1 + rng.below(256)};
    benchmark::DoNotOptimize(isa::decode(isa::encode(ins)));
  }
}
BENCHMARK(BM_IsaEncodeDecode);

void BM_AssembleFigure4(benchmark::State& state) {
  const std::string src = core::disassemble(core::figure4_program().image());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::assemble(src));
  }
}
BENCHMARK(BM_AssembleFigure4);

void BM_FixedFft256(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<i32> re(256), im(256);
  for (u32 i = 0; i < 256; ++i) {
    re[i] = rng.range(-100000, 100000);
    im[i] = rng.range(-100000, 100000);
  }
  for (auto _ : state) {
    auto r = re;
    auto i2 = im;
    util::fixed_fft(r, i2);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FixedFft256);

void BM_FixedIdct8x8(benchmark::State& state) {
  util::Rng rng(8);
  i32 coef[64];
  for (auto& c : coef) c = rng.range(-1024, 1023);
  i32 pix[64];
  for (auto _ : state) {
    util::fixed_idct8x8(coef, pix);
    benchmark::DoNotOptimize(pix);
  }
}
BENCHMARK(BM_FixedIdct8x8);

void BM_EndToEndInvocation(benchmark::State& state) {
  platform::Soc soc;
  rac::PassthroughRac rac(soc.kernel(), "pass", 64, 32);
  core::Ocp& ocp = soc.add_ocp(rac);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = 0x4000'0000,
                           .in_base = 0x4001'0000,
                           .out_base = 0x4002'0000,
                           .in_words = 64,
                           .out_words = 64});
  session.install(core::build_stream_program(
                      {.in_words = 64, .out_words = 64, .burst = 64}),
                  /*timed_program=*/false);
  util::Rng rng(2);
  std::vector<u32> in(64);
  for (auto& w : in) w = rng.next_u32();
  for (auto _ : state) {
    session.put_input(in);
    benchmark::DoNotOptimize(session.run_poll());
  }
}
BENCHMARK(BM_EndToEndInvocation);

}  // namespace

BENCHMARK_MAIN();
