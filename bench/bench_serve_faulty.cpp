// SVC under injected faults — the src/fault/ robustness story end to end.
//
// Three scenarios arm the fault injector against the offload service and
// measure what the recovery machinery (retry + backoff + watchdog +
// quarantine, docs/robustness.md) salvages:
//   serve_faulty_rate  bus ERROR beats and output-FIFO corruption at a
//                      swept rate (ppm per opportunity): availability and
//                      e2e_p99 versus fault rate, every completed payload
//                      still verified against the software reference.
//   serve_faulty_hang  worker 0's RAC swallows every end_op: the watchdog
//                      times the hangs out, two strikes quarantine the
//                      worker, and the whole load drains through worker 1
//                      (graceful degradation, zero failed jobs).
//   serve_faulty_irq   completion IRQ edges suppressed with p=0.3: the
//                      watchdog poll rescues the lost doorbells
//                      (irq_recoveries) and nothing fails or retries.
//
// All three are seeded (run_ctx) scenarios; the RunContext's --faults
// override replaces the built-in plan, so any site/rate mix can be
// explored from the command line without recompiling. Fixed seed + fixed
// plan ⇒ bit-identical reports (the --compare-jobs identity check covers
// this family like any other).
#include "scenarios.hpp"

#include <string>
#include <utility>

#include "fault/plan.hpp"
#include "svc/ledger.hpp"
#include "svc/service.hpp"

namespace ouessant::scenarios {
namespace {

/// Watchdog deadline: comfortably above any legitimate batch service
/// time (hundreds of cycles for the kinds used here) and small enough
/// that a hang-heavy run stays well inside the scenario timeout.
constexpr u64 kWatchdog = 16'384;

/// Run a fault-armed service point: honour the --faults override, serve
/// the workload, flatten the report (add_to emits the fault metric
/// block), prove the extended ledger (SoC tracks + per-worker tracks,
/// including quarantine time) and the job-conservation invariant.
void serve_faulty_point(svc::ServiceConfig cfg, svc::WorkloadConfig wl,
                        const exp::RunContext& ctx, exp::Result& result) {
  if (!ctx.faults.empty()) {
    cfg.faults = fault::FaultPlan::parse(ctx.faults);
  }
  svc::OffloadService service(std::move(cfg));
  wl.seed = ctx.seed;
  const svc::ServiceReport rep = service.run(wl);
  rep.add_to(result);
  (void)svc::validate_service_ledger(service);
  if (rep.completed + rep.rejected + rep.failed != rep.jobs) {
    result.fail("job conservation broken: completed " +
                std::to_string(rep.completed) + " + rejected " +
                std::to_string(rep.rejected) + " + failed " +
                std::to_string(rep.failed) + " != " +
                std::to_string(rep.jobs));
  }
}

svc::ServiceConfig two_idct_workers() {
  svc::ServiceConfig cfg;
  cfg.ocps = {svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 1},
              svc::OcpSpec{.kind = svc::JobKind::kIdct, .max_batch = 1}};
  cfg.queue_depth = 256;
  return cfg;
}

void run_rate(const exp::ParamMap& params, const exp::RunContext& ctx,
              exp::Result& result) {
  const double p = static_cast<double>(params.get_u32("fault_ppm")) * 1e-6;
  svc::ServiceConfig cfg = two_idct_workers();
  cfg.faults.add({.kind = fault::FaultKind::kBusError, .prob = p})
      .add({.kind = fault::FaultKind::kFifoCorrupt, .prob = p});
  cfg.retry = svc::RetryPolicy{.max_attempts = 4,
                               .backoff_base = 2048,
                               .backoff_mult = 2,
                               .watchdog_cycles = kWatchdog};
  svc::WorkloadConfig wl;
  wl.jobs = 100;
  wl.mean_gap = 400.0;
  serve_faulty_point(std::move(cfg), wl, ctx, result);
  if (result.metrics.get_real("availability") < 0.5) {
    result.fail("availability collapsed below 0.5 despite retries");
  }
}

void run_hang(const exp::ParamMap& params, const exp::RunContext& ctx,
              exp::Result& result) {
  (void)params;
  svc::ServiceConfig cfg = two_idct_workers();
  // Worker 0's RAC never reports completion; worker 1 is untouched.
  cfg.faults.add(
      {.kind = fault::FaultKind::kRacHang, .ocp = 0, .prob = 1.0});
  cfg.retry = svc::RetryPolicy{.max_attempts = 4,
                               .backoff_base = 2048,
                               .backoff_mult = 2,
                               .quarantine_after = 2,
                               .watchdog_cycles = kWatchdog};
  svc::WorkloadConfig wl;
  wl.jobs = 80;
  wl.mean_gap = 500.0;
  serve_faulty_point(std::move(cfg), wl, ctx, result);
  if (result.metrics.get_int("quarantined") != 1) {
    result.fail("hung worker was not quarantined");
  }
  // Two strikes sideline worker 0, so no job can burn its whole retry
  // budget there: everything must drain through worker 1.
  if (result.metrics.get_int("failed") != 0) {
    result.fail("jobs failed despite a healthy second worker");
  }
}

void run_irq(const exp::ParamMap& params, const exp::RunContext& ctx,
             exp::Result& result) {
  (void)params;
  svc::ServiceConfig cfg = two_idct_workers();
  cfg.faults.add({.kind = fault::FaultKind::kIrqDrop, .prob = 0.3});
  cfg.retry = svc::RetryPolicy{.max_attempts = 2,
                               .backoff_base = 2048,
                               .watchdog_cycles = kWatchdog};
  svc::WorkloadConfig wl;
  wl.jobs = 60;
  wl.mean_gap = 600.0;
  serve_faulty_point(std::move(cfg), wl, ctx, result);
  if (result.metrics.get_int("irq_recoveries") == 0) {
    result.fail("no watchdog IRQ recoveries at p=0.3");
  }
  // A dropped doorbell delays the ack but corrupts nothing.
  if (result.metrics.get_int("failed") != 0 ||
      result.metrics.get_int("completed") != 60) {
    result.fail("suppressed IRQs cost completions");
  }
}

}  // namespace

void register_serve_faulty(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "serve_faulty_rate",
      .experiment = "FAULT",
      .title = "availability and p99 vs bus/FIFO fault rate (ppm)",
      .grid = {{.name = "fault_ppm", .values = {100, 500, 2000}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_rate,
  });
  r.add(exp::ScenarioSpec{
      .name = "serve_faulty_hang",
      .experiment = "FAULT",
      .title = "hung RAC quarantined, load drains via the healthy worker",
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_hang,
  });
  r.add(exp::ScenarioSpec{
      .name = "serve_faulty_irq",
      .experiment = "FAULT",
      .title = "suppressed completion IRQs rescued by the watchdog poll",
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_irq,
  });
}

}  // namespace ouessant::scenarios
