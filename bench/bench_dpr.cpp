// E7 (extension ablation) — Dynamic Partial Reconfiguration tradeoff.
//
// The paper announces DPR support as work in progress; these scenarios
// quantify the design choice it enables: one reconfigurable OCP slot
// hosting IDCT-class and scaling datapaths alternately, versus two static
// OCPs. Reported: FPGA area of both options (e7_dpr_area) and end-to-end
// time for workloads that alternate between the two kernels at different
// batch granularities (e7_dpr — reconfiguration cost amortizes with batch
// size).
#include "scenarios.hpp"

#include "drv/session.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "ouessant/dpr.hpp"
#include "platform/soc.hpp"
#include "rac/passthrough.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;
constexpr u32 kWords = 64;

std::vector<u32> workload() {
  util::Rng rng(9);
  std::vector<u32> v(kWords);
  for (auto& w : v) w = rng.next_u32() & 0x00FF'FFFF;
  return v;
}

/// Alternating workload on a single reconfigurable slot.
u64 run_dpr(u32 batches, u32 batch_len, u32* swaps_out) {
  platform::Soc soc;
  const util::Q q(16);
  rac::ScaleRac kernel_a(soc.kernel(), "kernel_a", kWords,
                         q.from_double(2.0), 18);
  rac::ScaleRac kernel_b(soc.kernel(), "kernel_b", kWords,
                         q.from_double(0.5), 18);
  core::ReconfigSlot slot(soc.kernel(), "slot", {&kernel_a, &kernel_b});
  core::Ocp& ocp = soc.add_ocp(slot);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg, .in_base = kIn,
                           .out_base = kOut, .in_words = kWords,
                           .out_words = kWords});
  session.install(core::build_stream_program(
                      {.in_words = kWords, .out_words = kWords, .burst = 64}),
                  /*timed_program=*/false);
  const auto in = workload();

  const Cycle t0 = soc.kernel().now();
  for (u32 b = 0; b < batches; ++b) {
    const std::size_t want = b % 2;
    if (slot.active_index() != want) {
      slot.request_swap(want);
      soc.kernel().run_until([&] { return !slot.reconfiguring(); });
    }
    for (u32 i = 0; i < batch_len; ++i) {
      session.put_input(in);
      session.run_poll();
    }
  }
  *swaps_out = static_cast<u32>(slot.swaps());
  obs::validate_soc_ledger(soc);
  return soc.kernel().now() - t0;
}

/// Same workload on two always-resident OCPs.
u64 run_static(u32 batches, u32 batch_len) {
  platform::Soc soc;
  const util::Q q(16);
  rac::ScaleRac kernel_a(soc.kernel(), "kernel_a", kWords,
                         q.from_double(2.0), 18);
  rac::ScaleRac kernel_b(soc.kernel(), "kernel_b", kWords,
                         q.from_double(0.5), 18);
  core::Ocp& ocp_a = soc.add_ocp(kernel_a);
  core::Ocp& ocp_b = soc.add_ocp(kernel_b);
  drv::OcpSession sa(soc.cpu(), soc.sram(), ocp_a,
                     {.prog_base = kProg, .in_base = kIn, .out_base = kOut,
                      .in_words = kWords, .out_words = kWords});
  drv::OcpSession sb(soc.cpu(), soc.sram(), ocp_b,
                     {.prog_base = kProg + 0x1000, .in_base = kIn,
                      .out_base = kOut, .in_words = kWords,
                      .out_words = kWords});
  const auto prog = core::build_stream_program(
      {.in_words = kWords, .out_words = kWords, .burst = 64});
  sa.install(prog, false);
  sb.install(prog, false);
  const auto in = workload();

  const Cycle t0 = soc.kernel().now();
  for (u32 b = 0; b < batches; ++b) {
    drv::OcpSession& s = (b % 2 == 0) ? sa : sb;
    for (u32 i = 0; i < batch_len; ++i) {
      s.put_input(in);
      s.run_poll();
    }
  }
  obs::validate_soc_ledger(soc);
  return soc.kernel().now() - t0;
}

void run_area_point(const exp::ParamMap&, exp::Result& result) {
  platform::Soc soc;
  const util::Q q(16);
  rac::ScaleRac a(soc.kernel(), "a", kWords, q.from_double(2.0), 18);
  rac::ScaleRac b(soc.kernel(), "b", kWords, q.from_double(0.5), 18);
  core::ReconfigSlot slot(soc.kernel(), "slot", {&a, &b});
  core::Ocp& ocp = soc.add_ocp(slot);
  const auto dpr_area = ocp.full_resource_tree().total();

  platform::Soc soc2;
  rac::ScaleRac a2(soc2.kernel(), "a", kWords, q.from_double(2.0), 18);
  rac::ScaleRac b2(soc2.kernel(), "b", kWords, q.from_double(0.5), 18);
  core::Ocp& oa = soc2.add_ocp(a2);
  core::Ocp& ob = soc2.add_ocp(b2);
  auto static_area = oa.full_resource_tree().total();
  static_area += ob.full_resource_tree().total();

  result.add_metric("dpr_lut", dpr_area.luts);
  result.add_metric("dpr_ff", dpr_area.ffs);
  result.add_metric("dpr_bram", dpr_area.bram36);
  result.add_metric("dpr_dsp", dpr_area.dsps);
  result.add_metric("static_lut", static_area.luts);
  result.add_metric("static_ff", static_area.ffs);
  result.add_metric("static_bram", static_area.bram36);
  result.add_metric("static_dsp", static_area.dsps);
}

void run_time_point(const exp::ParamMap& params, exp::Result& result) {
  const u32 batch_len = params.get_u32("batch_len");
  const u32 batches = 8;
  u32 swaps = 0;
  const u64 dpr = run_dpr(batches, batch_len, &swaps);
  const u64 stat = run_static(batches, batch_len);
  result.add_metric("dpr_cycles", dpr);
  result.add_metric("static_cycles", stat);
  result.add_metric("swaps", swaps);
  result.add_metric("dpr_over_static",
                    static_cast<double>(dpr) / static_cast<double>(stat));
}

}  // namespace

void register_e7_dpr(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e7_dpr_area",
      .experiment = "E7",
      .title = "DPR slot vs two static OCPs: FPGA area",
      .run = run_area_point,
  });
  r.add(exp::ScenarioSpec{
      .name = "e7_dpr",
      .experiment = "E7",
      .title = "DPR slot vs two static OCPs: alternating-kernel time",
      .grid = {{.name = "batch_len", .values = {1, 2, 8, 32, 128}}},
      .run = run_time_point,
  });
}

}  // namespace ouessant::scenarios
