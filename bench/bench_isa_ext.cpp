// E6 — ablation for the paper's announced ISA evolution ("The instruction
// set is also being worked on, to provide higher flexibility"): the v2
// LOOP instruction with post-increment streaming mode versus the v1
// unrolled transfer ladders of Fig. 4.
//
// Reported per configuration: microcode size (words of program memory),
// instruction fetch traffic (extra bus reads), and end-to-end cycles.
// Also compares exec (blocking) vs execs (overlapped) scheduling.
#include <cstdio>

#include "drv/session.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/passthrough.hpp"
#include "util/rng.hpp"

namespace {

using namespace ouessant;

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;

struct Result {
  u64 program_words;
  u64 instructions_executed;
  u64 cycles;
};

Result measure(u32 words, u32 burst, bool use_loop, bool overlap) {
  platform::Soc soc;
  rac::PassthroughRac rac(soc.kernel(), "pass", words, 32);
  core::Ocp& ocp = soc.add_ocp(
      rac, use_loop ? core::IsaLevel::kV2 : core::IsaLevel::kV1);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg, .in_base = kIn,
                           .out_base = kOut, .in_words = words,
                           .out_words = words});
  const core::Program prog = core::build_stream_program(
      {.in_words = words, .out_words = words, .burst = burst,
       .overlap = overlap, .use_loop = use_loop});
  session.install(prog, /*timed_program=*/false);
  util::Rng rng(2);
  std::vector<u32> in(words);
  for (auto& w : in) w = rng.next_u32();
  session.put_input(in);
  const u64 cycles = session.run_irq();
  if (session.get_output() != in) {
    std::fprintf(stderr, "DATA MISMATCH (words=%u loop=%d)\n", words,
                 use_loop);
  }
  return {.program_words = prog.size(),
          .instructions_executed = ocp.controller().stats().instructions,
          .cycles = cycles};
}

}  // namespace

int main() {
  std::printf("E6: ISA ablation — v1 unrolled vs v2 loop microcode\n\n");
  std::printf("%-8s %-6s %-10s %10s %12s %10s\n", "words", "burst", "isa",
              "prog size", "instrs run", "cycles");
  for (const u32 words : {128u, 512u, 2048u}) {
    for (const u32 burst : {16u, 64u}) {
      for (const bool use_loop : {false, true}) {
        const Result r = measure(words, burst, use_loop, /*overlap=*/true);
        std::printf("%-8u %-6u %-10s %10llu %12llu %10llu\n", words, burst,
                    use_loop ? "v2 loop" : "v1 unroll",
                    static_cast<unsigned long long>(r.program_words),
                    static_cast<unsigned long long>(r.instructions_executed),
                    static_cast<unsigned long long>(r.cycles));
      }
    }
  }

  std::printf("\nexec (blocking) vs execs (overlapped), 512 words @ DMA64, "
              "v1:\n");
  const Result blocking = measure(512, 64, false, /*overlap=*/false);
  const Result overlapped = measure(512, 64, false, /*overlap=*/true);
  std::printf("  exec   : %llu cycles\n",
              static_cast<unsigned long long>(blocking.cycles));
  std::printf("  execs  : %llu cycles (%.1f%% faster)\n",
              static_cast<unsigned long long>(overlapped.cycles),
              100.0 * (1.0 - static_cast<double>(overlapped.cycles) /
                                 static_cast<double>(blocking.cycles)));
  std::printf("\nexpected shape: v2 shrinks microcode from O(words/burst) "
              "to O(1)\nwith matching cycle counts (fetch traffic is the "
              "only delta).\n");
  return 0;
}
