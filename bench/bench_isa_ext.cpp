// E6 — ablation for the paper's announced ISA evolution ("The instruction
// set is also being worked on, to provide higher flexibility"): the v2
// LOOP instruction with post-increment streaming mode versus the v1
// unrolled transfer ladders of Fig. 4 (scenario e6_isa), and exec
// (blocking) vs execs (overlapped) scheduling (scenario e6_overlap).
//
// Reported per configuration: microcode size (words of program memory),
// instruction fetch traffic (extra bus reads), and end-to-end cycles.
#include "scenarios.hpp"

#include "drv/session.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/passthrough.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;

struct Measurement {
  u64 program_words;
  u64 instructions_executed;
  u64 cycles;
  bool data_ok;
};

Measurement measure(u32 words, u32 burst, bool use_loop, bool overlap) {
  platform::Soc soc;
  rac::PassthroughRac rac(soc.kernel(), "pass", words, 32);
  core::Ocp& ocp = soc.add_ocp(
      rac, use_loop ? core::IsaLevel::kV2 : core::IsaLevel::kV1);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg, .in_base = kIn,
                           .out_base = kOut, .in_words = words,
                           .out_words = words});
  const core::Program prog = core::build_stream_program(
      {.in_words = words, .out_words = words, .burst = burst,
       .overlap = overlap, .use_loop = use_loop});
  session.install(prog, /*timed_program=*/false);
  util::Rng rng(2);
  std::vector<u32> in(words);
  for (auto& w : in) w = rng.next_u32();
  session.put_input(in);
  const u64 cycles = session.run_irq();
  obs::validate_soc_ledger(soc);
  return {.program_words = prog.size(),
          .instructions_executed = ocp.controller().stats().instructions,
          .cycles = cycles,
          .data_ok = session.get_output() == in};
}

void run_isa_point(const exp::ParamMap& params, exp::Result& result) {
  const u32 words = params.get_u32("words");
  const u32 burst = params.get_u32("burst");
  const bool use_loop = params.get_str("isa") == "v2";
  const Measurement m = measure(words, burst, use_loop, /*overlap=*/true);
  if (!m.data_ok) result.fail("data mismatch");
  result.add_metric("prog_size", m.program_words);
  result.add_metric("instrs_run", m.instructions_executed);
  result.add_metric("cycles", m.cycles);
}

void run_overlap_point(const exp::ParamMap& params, exp::Result& result) {
  const bool overlapped = params.get_str("mode") == "execs";
  const Measurement m = measure(512, 64, /*use_loop=*/false, overlapped);
  if (!m.data_ok) result.fail("data mismatch");
  result.add_metric("cycles", m.cycles);
}

}  // namespace

void register_e6_isa_ext(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e6_isa",
      .experiment = "E6",
      .title = "ISA ablation: v1 unrolled vs v2 loop microcode",
      .grid = {{.name = "words", .values = {128, 512, 2048}},
               {.name = "burst", .values = {16, 64}},
               {.name = "isa", .values = {"v1", "v2"}}},
      .run = run_isa_point,
  });
  r.add(exp::ScenarioSpec{
      .name = "e6_overlap",
      .experiment = "E6",
      .title = "exec (blocking) vs execs (overlapped), 512 words @ DMA64, v1",
      .grid = {{.name = "mode", .values = {"exec", "execs"}}},
      .run = run_overlap_point,
  });
}

}  // namespace ouessant::scenarios
