// CHAIN — accelerator-to-accelerator chaining (docs/chaining.md).
//
// Four scenarios measure what the p2p ChainLink buys over the
// store-and-forward SRAM bounce, at equal payload and with the same two
// RACs (dequantize -> IDCT, the chained JPEG decode pair):
//   chain_traffic    the headline A/B: run the identical block batch
//                    through both modes, assert the payloads are
//                    bit-identical and that linked mode is both faster
//                    and moves strictly fewer bus beats (the
//                    intermediate blocks never touch SRAM).
//   chain_link_cost  the link's cycles_per_word swept in linked mode —
//                    the cost knob's effect on end-to-end cycles, plus
//                    the busy == words * cycles_per_word identity.
//   chain_service    the dispatcher path: an OffloadService with one
//                    chained worker serving JobKind::kJpegChain under
//                    open-loop load, mode gridded (and overridable with
//                    --chain), every completion verified in-service.
//   serve_jpeg       the end-to-end pipeline: Huffman decode (software,
//                    charged to the GPP) -> Dequant RAC -> IDCT RAC per
//                    8x8 block, assembled and proven bit-exact against
//                    the all-software decode of the same bitstream.
//
// Every run closes its CycleLedger including the chain track
// (obs::collect_chain), so the linked-vs-bounced decomposition is
// proven, not assumed.
#include "scenarios.hpp"

#include <array>
#include <string>
#include <vector>

#include "codec/jpeg.hpp"
#include "drv/chain.hpp"
#include "obs/collect.hpp"
#include "platform/soc.hpp"
#include "rac/dequant.hpp"
#include "rac/idct.hpp"
#include "svc/service.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"
#include "util/transforms.hpp"

namespace ouessant::scenarios {
namespace {

constexpr Addr kHeadProg = 0x4000'0000;
constexpr Addr kTailProg = 0x4000'2000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kBounce = 0x4002'0000;
constexpr Addr kOut = 0x4003'0000;

/// Quantized scan-order blocks with JPEG-like statistics: a large DC
/// term, mostly-zero AC tail — the payload shape the chain is built for.
std::vector<std::array<i32, 64>> synth_blocks(u32 count, u64 seed) {
  util::Rng rng(seed);
  std::vector<std::array<i32, 64>> blocks(count);
  for (auto& blk : blocks) {
    blk[0] = static_cast<i32>(rng.range(-100, 100));
    for (u32 i = 1; i < 64; ++i) {
      blk[i] = rng.chance(0.75) ? 0 : static_cast<i32>(rng.range(-30, 30));
    }
  }
  return blocks;
}

/// Bit-exact software model of the dequantize->IDCT pair for one
/// scan-order block (the same arithmetic as the two RAC datapaths).
std::array<i32, 64> sw_chain_block(const std::array<i32, 64>& qblk,
                                   const std::array<i32, 64>& quant) {
  const auto& zz = codec::zigzag_order();
  i32 coef[64];
  i32 pix[64];
  for (u32 i = 0; i < 64; ++i) {
    coef[zz[i]] = qblk[i] * quant[zz[i]];
  }
  util::fixed_idct8x8(coef, pix);
  std::array<i32, 64> out;
  for (u32 i = 0; i < 64; ++i) out[i] = pix[i];
  return out;
}

struct ChainRun {
  u64 cycles = 0;      ///< kernel cycles spent inside the block loop
  u64 bus_beats = 0;   ///< total data beats over the system bus
  u64 link_words = 0;  ///< words the ChainLink moved (0 in SF mode)
  u64 link_busy = 0;   ///< link-occupied cycles
  std::vector<std::array<i32, 64>> out;  ///< pixel blocks, raster order
};

/// Push @p blocks through a fresh dequant->IDCT chain stack in @p mode,
/// @p batch blocks per launch (blocks.size() must divide evenly), and
/// close the ledger including the chain track.
ChainRun run_chain(drv::ChainMode mode, u32 cycles_per_word, u32 batch,
                   const std::vector<std::array<i32, 64>>& blocks,
                   u32 quality) {
  if (blocks.size() % batch != 0) {
    throw ConfigError("run_chain: blocks not a multiple of batch");
  }
  platform::Soc soc;
  rac::DequantConfig dqc;
  dqc.quant = codec::quant_table(quality);
  dqc.zigzag = codec::zigzag_order();
  rac::DequantRac dq(soc.kernel(), "chain_dq", dqc);
  rac::IdctRac idct(soc.kernel(), "chain_idct");
  core::Ocp& head = soc.add_ocp(dq);
  core::Ocp& tail = soc.add_ocp(idct);
  fifo::ChainLink link(soc.kernel(), "chain_link",
                       {.cycles_per_word = cycles_per_word});
  drv::ChainSession session(soc.cpu(), soc.sram(), head, tail, link,
                            {.head_prog_base = kHeadProg,
                             .tail_prog_base = kTailProg,
                             .in_base = kIn,
                             .bounce_base = kBounce,
                             .out_base = kOut,
                             .block_words = 64,
                             .max_batch = batch},
                            mode);
  session.install(batch);

  ChainRun r;
  const Cycle t0 = soc.kernel().now();
  for (std::size_t b = 0; b < blocks.size(); b += batch) {
    std::vector<u32> in;
    in.reserve(static_cast<std::size_t>(batch) * 64);
    for (u32 k = 0; k < batch; ++k) {
      for (i32 v : blocks[b + k]) in.push_back(util::to_word(v));
    }
    session.put_input(in);
    session.run_irq();
    const auto out = session.get_output(batch * 64);
    for (u32 k = 0; k < batch; ++k) {
      std::array<i32, 64>& blk = r.out.emplace_back();
      for (u32 i = 0; i < 64; ++i) {
        blk[i] = util::from_word(out[static_cast<std::size_t>(k) * 64 + i]);
      }
    }
  }
  r.cycles = soc.kernel().now() - t0;
  r.bus_beats = soc.bus().master_totals().beats;
  r.link_words = link.words_moved();
  r.link_busy = link.busy_cycles();
  const fifo::ChainLink* links[] = {&link};
  obs::validate_soc_ledger(soc, links);
  return r;
}

bool outputs_match(const std::vector<std::array<i32, 64>>& a,
                   const std::vector<std::array<i32, 64>>& b) {
  return a == b;
}

// ---------------------------------------------------------------------
// chain_traffic

void run_traffic(const exp::ParamMap& params, const exp::RunContext& ctx,
                 exp::Result& result) {
  const u32 batch = params.get_u32("batch");
  const u32 quality = svc::jpeg_chain_quality();
  const auto blocks = synth_blocks(16, ctx.seed);
  std::vector<std::array<i32, 64>> ref(blocks.size());
  const auto quant = codec::quant_table(quality);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    ref[b] = sw_chain_block(blocks[b], quant);
  }

  // --chain forces one mode: report it alone, without the A/B guard.
  if (!ctx.chain.empty()) {
    const auto mode = ctx.chain == "linked" ? drv::ChainMode::kLinked
                                            : drv::ChainMode::kStoreForward;
    const ChainRun r = run_chain(mode, 1, batch, blocks, quality);
    if (!outputs_match(r.out, ref)) result.fail("payload != software model");
    result.add_metric("cycles", r.cycles);
    result.add_metric("bus_beats", r.bus_beats);
    result.add_metric("link_words", r.link_words);
    return;
  }

  const ChainRun linked =
      run_chain(drv::ChainMode::kLinked, 1, batch, blocks, quality);
  const ChainRun sf =
      run_chain(drv::ChainMode::kStoreForward, 1, batch, blocks, quality);
  result.add_metric("linked_cycles", linked.cycles);
  result.add_metric("sf_cycles", sf.cycles);
  result.add_metric("linked_beats", linked.bus_beats);
  result.add_metric("sf_beats", sf.bus_beats);
  result.add_metric("link_words", linked.link_words);
  result.add_metric("speedup", static_cast<double>(sf.cycles) /
                                   static_cast<double>(linked.cycles));
  result.add_metric("beats_saved", sf.bus_beats - linked.bus_beats);
  if (!outputs_match(linked.out, ref)) {
    result.fail("linked payload != software model");
  } else if (!outputs_match(sf.out, ref)) {
    result.fail("store-and-forward payload != software model");
  } else if (linked.cycles >= sf.cycles) {
    result.fail("linked mode not faster: " + std::to_string(linked.cycles) +
                " >= " + std::to_string(sf.cycles));
  } else if (linked.bus_beats >= sf.bus_beats) {
    result.fail("linked mode saved no bus beats: " +
                std::to_string(linked.bus_beats) +
                " >= " + std::to_string(sf.bus_beats));
  } else if (linked.link_words !=
             blocks.size() * 64) {  // every intermediate word via the link
    result.fail("link moved " + std::to_string(linked.link_words) +
                " words, expected " + std::to_string(blocks.size() * 64));
  }
}

// ---------------------------------------------------------------------
// chain_link_cost

void run_link_cost(const exp::ParamMap& params, const exp::RunContext& ctx,
                   exp::Result& result) {
  const u32 cpw = params.get_u32("cpw");
  const u32 quality = svc::jpeg_chain_quality();
  const auto blocks = synth_blocks(16, ctx.seed);
  const ChainRun r =
      run_chain(drv::ChainMode::kLinked, cpw, /*batch=*/8, blocks, quality);
  result.add_metric("cycles", r.cycles);
  result.add_metric("link_words", r.link_words);
  result.add_metric("link_busy", r.link_busy);
  if (r.link_busy != r.link_words * cpw) {
    result.fail("link busy " + std::to_string(r.link_busy) +
                " != words * cpw " + std::to_string(r.link_words * cpw));
  }
  const auto quant = codec::quant_table(quality);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (r.out[b] != sw_chain_block(blocks[b], quant)) {
      result.fail("payload != software model at block " + std::to_string(b));
      return;
    }
  }
}

// ---------------------------------------------------------------------
// chain_service

drv::ChainMode mode_from(const std::string& s) {
  return s == "store_forward" ? drv::ChainMode::kStoreForward
                              : drv::ChainMode::kLinked;
}

void run_service(const exp::ParamMap& params, const exp::RunContext& ctx,
                 exp::Result& result) {
  const std::string mode_str =
      ctx.chain.empty() ? params.get_str("mode") : ctx.chain;
  svc::ServiceConfig cfg;
  cfg.ocps.clear();
  cfg.chains = {svc::ChainSpec{.max_batch = 4,
                               .mode = mode_from(mode_str),
                               .link_cycles_per_word = 1}};
  cfg.queue_depth = 128;
  svc::WorkloadConfig wl;
  wl.jobs = 64;
  wl.mean_gap = 800.0;
  wl.kinds = {svc::JobKind::kJpegChain};
  wl.seed = ctx.seed;
  svc::OffloadService service(std::move(cfg));
  const svc::ServiceReport rep = service.run(wl);
  rep.add_to(result);
  std::vector<const fifo::ChainLink*> links;
  for (const auto& l : service.chain_links()) links.push_back(l.get());
  obs::validate_soc_ledger(service.soc(), links);
  if (rep.completed + rep.rejected != rep.jobs) {
    result.fail("service lost jobs");
  }
  if (mode_from(mode_str) == drv::ChainMode::kLinked &&
      rep.link_words != rep.completed * 64) {
    result.fail("link moved " + std::to_string(rep.link_words) +
                " words for " + std::to_string(rep.completed) + " jobs");
  }
}

// ---------------------------------------------------------------------
// serve_jpeg

void run_serve_jpeg(const exp::ParamMap& params, const exp::RunContext& ctx,
                    exp::Result& result) {
  const u32 dim = params.get_u32("dim");
  const std::string mode_str =
      ctx.chain.empty() ? params.get_str("mode") : ctx.chain;
  const auto mode = mode_from(mode_str);
  const u32 quality = svc::jpeg_chain_quality();
  const auto img = codec::test_image(dim, dim, ctx.seed);
  const auto jpg = codec::encode(img, quality, codec::EntropyKind::kHuffman);

  // The hardware pipeline: software Huffman decode (charged to the GPP)
  // feeding the dequant->IDCT chain, 8 blocks per launch.
  platform::Soc soc;
  rac::DequantConfig dqc;
  dqc.quant = codec::quant_table(quality);
  dqc.zigzag = codec::zigzag_order();
  rac::DequantRac dq(soc.kernel(), "jpeg_dq", dqc);
  rac::IdctRac idct(soc.kernel(), "jpeg_idct");
  core::Ocp& head = soc.add_ocp(dq);
  core::Ocp& tail = soc.add_ocp(idct);
  fifo::ChainLink link(soc.kernel(), "jpeg_link", {.cycles_per_word = 1});
  const u32 batch = 8;
  drv::ChainSession session(soc.cpu(), soc.sram(), head, tail, link,
                            {.head_prog_base = kHeadProg,
                             .tail_prog_base = kTailProg,
                             .in_base = kIn,
                             .bounce_base = kBounce,
                             .out_base = kOut,
                             .block_words = 64,
                             .max_batch = batch},
                            mode);
  session.install(batch);

  const Cycle t0 = soc.kernel().now();
  const auto qblocks = codec::decode_quantized(jpg, &soc.cpu());
  std::vector<std::array<i32, 64>> pix_blocks;
  pix_blocks.reserve(qblocks.size());
  for (std::size_t b = 0; b < qblocks.size(); b += batch) {
    std::vector<u32> in;
    in.reserve(static_cast<std::size_t>(batch) * 64);
    for (u32 k = 0; k < batch; ++k) {
      for (i32 v : qblocks[b + k]) in.push_back(util::to_word(v));
    }
    session.put_input(in);
    session.run_irq();
    const auto out = session.get_output(batch * 64);
    for (u32 k = 0; k < batch; ++k) {
      std::array<i32, 64>& blk = pix_blocks.emplace_back();
      for (u32 i = 0; i < 64; ++i) {
        blk[i] = util::from_word(out[static_cast<std::size_t>(k) * 64 + i]);
      }
    }
  }
  const u64 cycles = soc.kernel().now() - t0;
  const fifo::ChainLink* links[] = {&link};
  obs::validate_soc_ledger(soc, links);

  // All-software decode of the same bitstream: the bit-exactness oracle.
  const auto coef_blocks = codec::decode_coefficients(jpg);
  std::vector<std::array<i32, 64>> sw_blocks(coef_blocks.size());
  for (std::size_t b = 0; b < coef_blocks.size(); ++b) {
    i32 pix[64];
    util::fixed_idct8x8(coef_blocks[b].data(), pix);
    for (u32 i = 0; i < 64; ++i) sw_blocks[b][i] = pix[i];
  }
  const auto hw_img = codec::assemble(pix_blocks, dim, dim);
  const auto sw_img = codec::assemble(sw_blocks, dim, dim);

  result.add_metric("blocks", static_cast<u64>(qblocks.size()));
  result.add_metric("cycles", cycles);
  result.add_metric("cycles_per_block",
                    static_cast<double>(cycles) /
                        static_cast<double>(qblocks.size()));
  result.add_metric("bus_beats", soc.bus().master_totals().beats);
  result.add_metric("link_words", link.words_moved());
  result.add_metric("psnr_db", codec::psnr(img, hw_img));
  result.add_metric("bit_exact",
                    hw_img.samples == sw_img.samples ? "yes" : "NO");
  if (hw_img.samples != sw_img.samples) {
    result.fail("chained decode != software decode of the same bitstream");
  }
}

}  // namespace

void register_chain(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "chain_traffic",
      .experiment = "CHAIN",
      .title = "p2p link vs SRAM bounce, same payload: cycles + bus beats",
      .grid = {{.name = "batch", .values = {1, 4, 8}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_traffic,
  });
  r.add(exp::ScenarioSpec{
      .name = "chain_link_cost",
      .experiment = "CHAIN",
      .title = "link cycles_per_word swept in linked mode",
      .grid = {{.name = "cpw", .values = {1, 2, 4, 8}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_link_cost,
  });
  r.add(exp::ScenarioSpec{
      .name = "chain_service",
      .experiment = "CHAIN",
      .title = "one chained worker serving kJpegChain under open-loop load",
      .grid = {{.name = "mode", .values = {"linked", "store_forward"}}},
      .default_seed = svc::kDefaultServiceSeed,
      .run_ctx = run_service,
  });
  r.add(exp::ScenarioSpec{
      .name = "serve_jpeg",
      .experiment = "CHAIN",
      .title = "Huffman (sw) -> dequant RAC -> IDCT RAC, bit-exact decode",
      .grid = {{.name = "dim", .values = {32, 64}},
               {.name = "mode", .values = {"linked", "store_forward"}}},
      .default_seed = 1,
      .run_ctx = run_serve_jpeg,
  });
}

}  // namespace ouessant::scenarios
