// E8 (extension ablation) — bus portability: the same OCP, microcode and
// driver on the AMBA2/AHB-class interconnect (the paper's Leon3 platform)
// and on an AXI4-Lite-class interconnect (the paper's announced Zynq
// port). Only the bus-specific interface FSM differs — which is exactly
// the modularity claim of Fig. 3 — so the delta is pure protocol cost.
#include "scenarios.hpp"

#include "drv/session.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "rac/idct.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;

u64 run_idct(platform::BusKind bus) {
  platform::SocConfig cfg;
  cfg.bus = bus;
  platform::Soc soc(cfg);
  rac::IdctRac idct(soc.kernel(), "idct");
  core::Ocp& ocp = soc.add_ocp(idct);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg, .in_base = kIn,
                           .out_base = kOut, .in_words = 64,
                           .out_words = 64});
  session.install(core::build_stream_program(
                      {.in_words = 64, .out_words = 64, .burst = 64}),
                  /*timed_program=*/false);
  util::Rng rng(5);
  std::vector<u32> in(64);
  for (auto& w : in) w = util::to_word(rng.range(-512, 511));
  session.put_input(in);
  const u64 cycles = session.run_irq();
  obs::validate_soc_ledger(soc);
  return cycles;
}

u64 run_dft(platform::BusKind bus) {
  platform::SocConfig cfg;
  cfg.bus = bus;
  platform::Soc soc(cfg);
  rac::DftRac dft(soc.kernel(), "dft", {.points = 256});
  core::Ocp& ocp = soc.add_ocp(dft);
  drv::OcpSession session(soc.cpu(), soc.sram(), ocp,
                          {.prog_base = kProg, .in_base = kIn,
                           .out_base = kOut, .in_words = 512,
                           .out_words = 512});
  session.install(core::figure4_program(), false);
  util::Rng rng(6);
  std::vector<u32> in(512);
  for (auto& w : in) w = rng.next_u32() & 0x00FF'FFFF;
  session.put_input(in);
  const u64 cycles = session.run_irq();
  obs::validate_soc_ledger(soc);
  return cycles;
}

void run_point(const exp::ParamMap& params, exp::Result& result) {
  const bool dft = params.get_str("workload") == "dft";
  auto run = [&](platform::BusKind kind) {
    return dft ? run_dft(kind) : run_idct(kind);
  };
  const u64 ahb = run(platform::BusKind::kAhb);
  const u64 axi4 = run(platform::BusKind::kAxi4);
  const u64 lite = run(platform::BusKind::kAxiLite);
  result.add_metric("ahb", ahb);
  result.add_metric("axi4", axi4);
  result.add_metric("axilite", lite);
  result.add_metric("axi4_over_ahb",
                    static_cast<double>(axi4) / static_cast<double>(ahb));
  result.add_metric("lite_over_ahb",
                    static_cast<double>(lite) / static_cast<double>(ahb));
}

}  // namespace

void register_e8_bus_portability(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e8_bus",
      .experiment = "E8",
      .title = "identical OCP + microcode + driver on three interconnects",
      .grid = {{.name = "workload", .values = {"idct", "dft"}}},
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
