// E3 — reproduces §V-B's baremetal-vs-Linux analysis: "When running it
// without Linux, the DFT took 4000 cycles to compute, which gives an
// overhead of 3000 cycles coming from Linux. This comes from system
// calls."
//
// We run the 256-point DFT invocation in four environments:
//   * baremetal, polling driver
//   * baremetal, interrupt driver
//   * Linux, mmap (zero-copy) driver — the paper's driver
//   * Linux, copy_{from,to}_user driver — the naive alternative
// and report the per-invocation cycles and the derived OS overhead.
#include "scenarios.hpp"

#include "drv/linux_env.hpp"
#include "obs/collect.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"

namespace ouessant::scenarios {
namespace {

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;
constexpr Addr kUserIn = 0x4010'0000;
constexpr Addr kUserOut = 0x4011'0000;

struct Rig {
  Rig()
      : dft(soc.kernel(), "dft", {.points = 256}),
        ocp(soc.add_ocp(dft)),
        session(soc.cpu(), soc.sram(), ocp,
                {.prog_base = kProg, .in_base = kIn, .out_base = kOut,
                 .in_words = 512, .out_words = 512}) {
    session.install(core::figure4_program(), /*timed_program=*/false);
    util::Rng rng(3);
    std::vector<u32> in(512);
    for (auto& w : in) w = static_cast<u32>(rng.next_u32() & 0x00FF'FFFF);
    session.put_input(in);
    soc.sram().load(kUserIn, in);
  }

  platform::Soc soc;
  rac::DftRac dft;
  core::Ocp& ocp;
  drv::OcpSession session;
};

void run_point(const exp::ParamMap&, exp::Result& result) {
  u64 bm_poll = 0;
  u64 bm_irq = 0;
  u64 lx_mmap = 0;
  u64 lx_copy = 0;

  {
    Rig rig;
    bm_poll = rig.session.run_poll();
    obs::validate_soc_ledger(rig.soc);
  }
  {
    Rig rig;
    bm_irq = rig.session.run_irq();
    obs::validate_soc_ledger(rig.soc);
  }
  {
    Rig rig;
    drv::LinuxEnv env;
    env.invoke(rig.session, drv::XferMode::kMmap);  // warm
    lx_mmap = env.invoke(rig.session, drv::XferMode::kMmap);
    obs::validate_soc_ledger(rig.soc);
  }
  {
    Rig rig;
    drv::LinuxEnv env;
    env.invoke(rig.session, drv::XferMode::kCopyUser, kUserIn, kUserOut);
    lx_copy =
        env.invoke(rig.session, drv::XferMode::kCopyUser, kUserIn, kUserOut);
    obs::validate_soc_ledger(rig.soc);
  }

  result.add_metric("bm_poll", bm_poll);
  result.add_metric("bm_irq", bm_irq);
  result.add_metric("lx_mmap", lx_mmap);
  result.add_metric("lx_copy", lx_copy);
  result.add_metric("linux_overhead", lx_mmap - bm_irq);
  result.add_metric("copy_extra", lx_copy - lx_mmap);
  result.add_metric("copy_per_word",
                    static_cast<double>(lx_copy - lx_mmap) / 1024.0);
}

}  // namespace

void register_e3_linux_overhead(exp::Registry& r) {
  r.add(exp::ScenarioSpec{
      .name = "e3_linux_overhead",
      .experiment = "E3",
      .title = "256-pt DFT invocation cost by environment (cycles)",
      .run = run_point,
  });
}

}  // namespace ouessant::scenarios
