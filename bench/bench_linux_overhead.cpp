// E3 — reproduces §V-B's baremetal-vs-Linux analysis: "When running it
// without Linux, the DFT took 4000 cycles to compute, which gives an
// overhead of 3000 cycles coming from Linux. This comes from system
// calls."
//
// We run the 256-point DFT invocation in four environments:
//   * baremetal, polling driver
//   * baremetal, interrupt driver
//   * Linux, mmap (zero-copy) driver — the paper's driver
//   * Linux, copy_{from,to}_user driver — the naive alternative
// and report the per-invocation cycles and the derived OS overhead.
#include <cstdio>

#include "drv/linux_env.hpp"
#include "ouessant/codegen.hpp"
#include "platform/soc.hpp"
#include "rac/dft.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"

namespace {

using namespace ouessant;

constexpr Addr kProg = 0x4000'0000;
constexpr Addr kIn = 0x4001'0000;
constexpr Addr kOut = 0x4002'0000;
constexpr Addr kUserIn = 0x4010'0000;
constexpr Addr kUserOut = 0x4011'0000;

struct Rig {
  Rig()
      : dft(soc.kernel(), "dft", {.points = 256}),
        ocp(soc.add_ocp(dft)),
        session(soc.cpu(), soc.sram(), ocp,
                {.prog_base = kProg, .in_base = kIn, .out_base = kOut,
                 .in_words = 512, .out_words = 512}) {
    session.install(core::figure4_program(), /*timed_program=*/false);
    util::Rng rng(3);
    std::vector<u32> in(512);
    for (auto& w : in) w = static_cast<u32>(rng.next_u32() & 0x00FF'FFFF);
    session.put_input(in);
    soc.sram().load(kUserIn, in);
  }

  platform::Soc soc;
  rac::DftRac dft;
  core::Ocp& ocp;
  drv::OcpSession session;
};

}  // namespace

int main() {
  std::printf("E3: 256-pt DFT invocation cost by environment (cycles)\n\n");

  u64 bm_poll = 0;
  u64 bm_irq = 0;
  u64 lx_mmap = 0;
  u64 lx_copy = 0;

  {
    Rig rig;
    bm_poll = rig.session.run_poll();
  }
  {
    Rig rig;
    bm_irq = rig.session.run_irq();
  }
  {
    Rig rig;
    drv::LinuxEnv env;
    env.invoke(rig.session, drv::XferMode::kMmap);  // warm
    lx_mmap = env.invoke(rig.session, drv::XferMode::kMmap);
  }
  {
    Rig rig;
    drv::LinuxEnv env;
    env.invoke(rig.session, drv::XferMode::kCopyUser, kUserIn, kUserOut);
    lx_copy = env.invoke(rig.session, drv::XferMode::kCopyUser, kUserIn,
                         kUserOut);
  }

  std::printf("%-34s %10s\n", "environment", "cycles");
  std::printf("%-34s %10llu\n", "baremetal, polling",
              static_cast<unsigned long long>(bm_poll));
  std::printf("%-34s %10llu\n", "baremetal, interrupt",
              static_cast<unsigned long long>(bm_irq));
  std::printf("%-34s %10llu\n", "Linux, mmap driver (paper)",
              static_cast<unsigned long long>(lx_mmap));
  std::printf("%-34s %10llu\n", "Linux, copy_to_user driver",
              static_cast<unsigned long long>(lx_copy));

  std::printf("\nderived Linux overhead (mmap - baremetal irq): %llu\n",
              static_cast<unsigned long long>(lx_mmap - bm_irq));
  std::printf("extra cost of per-call copies: %llu (%.2f cycles/word)\n",
              static_cast<unsigned long long>(lx_copy - lx_mmap),
              static_cast<double>(lx_copy - lx_mmap) / 1024.0);
  std::printf("\npaper: baremetal ~4000, Linux ~7000, overhead ~3000\n");
  return 0;
}
