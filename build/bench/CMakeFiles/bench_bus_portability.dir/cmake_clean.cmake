file(REMOVE_RECURSE
  "CMakeFiles/bench_bus_portability.dir/bench_bus_portability.cpp.o"
  "CMakeFiles/bench_bus_portability.dir/bench_bus_portability.cpp.o.d"
  "bench_bus_portability"
  "bench_bus_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
