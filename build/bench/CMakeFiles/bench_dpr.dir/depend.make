# Empty dependencies file for bench_dpr.
# This may be replaced when dependencies are built.
