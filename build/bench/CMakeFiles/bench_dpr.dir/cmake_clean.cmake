file(REMOVE_RECURSE
  "CMakeFiles/bench_dpr.dir/bench_dpr.cpp.o"
  "CMakeFiles/bench_dpr.dir/bench_dpr.cpp.o.d"
  "bench_dpr"
  "bench_dpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
