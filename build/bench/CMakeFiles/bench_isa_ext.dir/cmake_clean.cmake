file(REMOVE_RECURSE
  "CMakeFiles/bench_isa_ext.dir/bench_isa_ext.cpp.o"
  "CMakeFiles/bench_isa_ext.dir/bench_isa_ext.cpp.o.d"
  "bench_isa_ext"
  "bench_isa_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isa_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
