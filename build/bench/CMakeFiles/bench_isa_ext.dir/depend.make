# Empty dependencies file for bench_isa_ext.
# This may be replaced when dependencies are built.
