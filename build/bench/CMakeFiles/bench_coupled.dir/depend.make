# Empty dependencies file for bench_coupled.
# This may be replaced when dependencies are built.
