file(REMOVE_RECURSE
  "CMakeFiles/bench_coupled.dir/bench_coupled.cpp.o"
  "CMakeFiles/bench_coupled.dir/bench_coupled.cpp.o.d"
  "bench_coupled"
  "bench_coupled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
