file(REMOVE_RECURSE
  "CMakeFiles/bench_linux_overhead.dir/bench_linux_overhead.cpp.o"
  "CMakeFiles/bench_linux_overhead.dir/bench_linux_overhead.cpp.o.d"
  "bench_linux_overhead"
  "bench_linux_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linux_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
