# Empty compiler generated dependencies file for bench_linux_overhead.
# This may be replaced when dependencies are built.
