file(REMOVE_RECURSE
  "CMakeFiles/bench_jpeg.dir/bench_jpeg.cpp.o"
  "CMakeFiles/bench_jpeg.dir/bench_jpeg.cpp.o.d"
  "bench_jpeg"
  "bench_jpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
