
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_jpeg.cpp" "bench/CMakeFiles/bench_jpeg.dir/bench_jpeg.cpp.o" "gcc" "bench/CMakeFiles/bench_jpeg.dir/bench_jpeg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/ouessant_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/l3/CMakeFiles/ouessant_l3.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ouessant_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/ouessant/CMakeFiles/ouessant_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rac/CMakeFiles/ouessant_rac.dir/DependInfo.cmake"
  "/root/repo/build/src/drv/CMakeFiles/ouessant_drv.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ouessant_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ouessant_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ouessant_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ouessant_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/fifo/CMakeFiles/ouessant_fifo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ouessant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/res/CMakeFiles/ouessant_res.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ouessant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
