# Empty dependencies file for bench_jpeg.
# This may be replaced when dependencies are built.
