file(REMOVE_RECURSE
  "CMakeFiles/bench_l3_validation.dir/bench_l3_validation.cpp.o"
  "CMakeFiles/bench_l3_validation.dir/bench_l3_validation.cpp.o.d"
  "bench_l3_validation"
  "bench_l3_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_l3_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
