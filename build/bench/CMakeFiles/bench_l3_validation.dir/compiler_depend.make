# Empty compiler generated dependencies file for bench_l3_validation.
# This may be replaced when dependencies are built.
