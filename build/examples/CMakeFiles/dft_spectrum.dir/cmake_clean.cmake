file(REMOVE_RECURSE
  "CMakeFiles/dft_spectrum.dir/dft_spectrum.cpp.o"
  "CMakeFiles/dft_spectrum.dir/dft_spectrum.cpp.o.d"
  "dft_spectrum"
  "dft_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dft_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
