# Empty dependencies file for dft_spectrum.
# This may be replaced when dependencies are built.
