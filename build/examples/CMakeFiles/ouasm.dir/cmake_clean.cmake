file(REMOVE_RECURSE
  "CMakeFiles/ouasm.dir/ouasm.cpp.o"
  "CMakeFiles/ouasm.dir/ouasm.cpp.o.d"
  "ouasm"
  "ouasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
