# Empty dependencies file for ouasm.
# This may be replaced when dependencies are built.
