# Empty dependencies file for jpeg_pipeline.
# This may be replaced when dependencies are built.
