file(REMOVE_RECURSE
  "CMakeFiles/soc_sim.dir/soc_sim.cpp.o"
  "CMakeFiles/soc_sim.dir/soc_sim.cpp.o.d"
  "soc_sim"
  "soc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
