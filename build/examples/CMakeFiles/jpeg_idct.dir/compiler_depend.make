# Empty compiler generated dependencies file for jpeg_idct.
# This may be replaced when dependencies are built.
