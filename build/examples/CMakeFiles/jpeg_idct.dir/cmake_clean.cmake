file(REMOVE_RECURSE
  "CMakeFiles/jpeg_idct.dir/jpeg_idct.cpp.o"
  "CMakeFiles/jpeg_idct.dir/jpeg_idct.cpp.o.d"
  "jpeg_idct"
  "jpeg_idct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpeg_idct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
