file(REMOVE_RECURSE
  "CMakeFiles/standalone_sensor.dir/standalone_sensor.cpp.o"
  "CMakeFiles/standalone_sensor.dir/standalone_sensor.cpp.o.d"
  "standalone_sensor"
  "standalone_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standalone_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
