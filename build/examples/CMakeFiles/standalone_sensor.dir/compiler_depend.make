# Empty compiler generated dependencies file for standalone_sensor.
# This may be replaced when dependencies are built.
