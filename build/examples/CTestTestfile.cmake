# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_jpeg_idct "/root/repo/build/examples/jpeg_idct")
set_tests_properties(example_jpeg_idct PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dft_spectrum "/root/repo/build/examples/dft_spectrum")
set_tests_properties(example_dft_spectrum PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_accel "/root/repo/build/examples/multi_accel")
set_tests_properties(example_multi_accel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_jpeg_pipeline "/root/repo/build/examples/jpeg_pipeline")
set_tests_properties(example_jpeg_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_standalone_sensor "/root/repo/build/examples/standalone_sensor")
set_tests_properties(example_standalone_sensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ouasm_demo "/root/repo/build/examples/ouasm" "demo")
set_tests_properties(example_ouasm_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ouasm_rtl "/root/repo/build/examples/ouasm" "rtl" "dft256")
set_tests_properties(example_ouasm_rtl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_soc_sim "/root/repo/build/examples/soc_sim" "--rac" "idct" "--blocks" "1")
set_tests_properties(example_soc_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
