file(REMOVE_RECURSE
  "CMakeFiles/ouessant_core.dir/assembler.cpp.o"
  "CMakeFiles/ouessant_core.dir/assembler.cpp.o.d"
  "CMakeFiles/ouessant_core.dir/codegen.cpp.o"
  "CMakeFiles/ouessant_core.dir/codegen.cpp.o.d"
  "CMakeFiles/ouessant_core.dir/controller.cpp.o"
  "CMakeFiles/ouessant_core.dir/controller.cpp.o.d"
  "CMakeFiles/ouessant_core.dir/dpr.cpp.o"
  "CMakeFiles/ouessant_core.dir/dpr.cpp.o.d"
  "CMakeFiles/ouessant_core.dir/emulator.cpp.o"
  "CMakeFiles/ouessant_core.dir/emulator.cpp.o.d"
  "CMakeFiles/ouessant_core.dir/interface.cpp.o"
  "CMakeFiles/ouessant_core.dir/interface.cpp.o.d"
  "CMakeFiles/ouessant_core.dir/isa.cpp.o"
  "CMakeFiles/ouessant_core.dir/isa.cpp.o.d"
  "CMakeFiles/ouessant_core.dir/ocp.cpp.o"
  "CMakeFiles/ouessant_core.dir/ocp.cpp.o.d"
  "CMakeFiles/ouessant_core.dir/program.cpp.o"
  "CMakeFiles/ouessant_core.dir/program.cpp.o.d"
  "CMakeFiles/ouessant_core.dir/rtlgen.cpp.o"
  "CMakeFiles/ouessant_core.dir/rtlgen.cpp.o.d"
  "libouessant_core.a"
  "libouessant_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
