
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ouessant/assembler.cpp" "src/ouessant/CMakeFiles/ouessant_core.dir/assembler.cpp.o" "gcc" "src/ouessant/CMakeFiles/ouessant_core.dir/assembler.cpp.o.d"
  "/root/repo/src/ouessant/codegen.cpp" "src/ouessant/CMakeFiles/ouessant_core.dir/codegen.cpp.o" "gcc" "src/ouessant/CMakeFiles/ouessant_core.dir/codegen.cpp.o.d"
  "/root/repo/src/ouessant/controller.cpp" "src/ouessant/CMakeFiles/ouessant_core.dir/controller.cpp.o" "gcc" "src/ouessant/CMakeFiles/ouessant_core.dir/controller.cpp.o.d"
  "/root/repo/src/ouessant/dpr.cpp" "src/ouessant/CMakeFiles/ouessant_core.dir/dpr.cpp.o" "gcc" "src/ouessant/CMakeFiles/ouessant_core.dir/dpr.cpp.o.d"
  "/root/repo/src/ouessant/emulator.cpp" "src/ouessant/CMakeFiles/ouessant_core.dir/emulator.cpp.o" "gcc" "src/ouessant/CMakeFiles/ouessant_core.dir/emulator.cpp.o.d"
  "/root/repo/src/ouessant/interface.cpp" "src/ouessant/CMakeFiles/ouessant_core.dir/interface.cpp.o" "gcc" "src/ouessant/CMakeFiles/ouessant_core.dir/interface.cpp.o.d"
  "/root/repo/src/ouessant/isa.cpp" "src/ouessant/CMakeFiles/ouessant_core.dir/isa.cpp.o" "gcc" "src/ouessant/CMakeFiles/ouessant_core.dir/isa.cpp.o.d"
  "/root/repo/src/ouessant/ocp.cpp" "src/ouessant/CMakeFiles/ouessant_core.dir/ocp.cpp.o" "gcc" "src/ouessant/CMakeFiles/ouessant_core.dir/ocp.cpp.o.d"
  "/root/repo/src/ouessant/program.cpp" "src/ouessant/CMakeFiles/ouessant_core.dir/program.cpp.o" "gcc" "src/ouessant/CMakeFiles/ouessant_core.dir/program.cpp.o.d"
  "/root/repo/src/ouessant/rtlgen.cpp" "src/ouessant/CMakeFiles/ouessant_core.dir/rtlgen.cpp.o" "gcc" "src/ouessant/CMakeFiles/ouessant_core.dir/rtlgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ouessant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ouessant_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/fifo/CMakeFiles/ouessant_fifo.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ouessant_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/res/CMakeFiles/ouessant_res.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ouessant_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ouessant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
