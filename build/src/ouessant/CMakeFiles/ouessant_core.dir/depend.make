# Empty dependencies file for ouessant_core.
# This may be replaced when dependencies are built.
