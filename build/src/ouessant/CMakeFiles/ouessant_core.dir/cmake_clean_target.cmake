file(REMOVE_RECURSE
  "libouessant_core.a"
)
