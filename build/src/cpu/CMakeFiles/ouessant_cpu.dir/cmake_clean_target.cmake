file(REMOVE_RECURSE
  "libouessant_cpu.a"
)
