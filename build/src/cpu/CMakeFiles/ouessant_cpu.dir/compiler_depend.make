# Empty compiler generated dependencies file for ouessant_cpu.
# This may be replaced when dependencies are built.
