file(REMOVE_RECURSE
  "CMakeFiles/ouessant_cpu.dir/dcache.cpp.o"
  "CMakeFiles/ouessant_cpu.dir/dcache.cpp.o.d"
  "CMakeFiles/ouessant_cpu.dir/gpp.cpp.o"
  "CMakeFiles/ouessant_cpu.dir/gpp.cpp.o.d"
  "CMakeFiles/ouessant_cpu.dir/irq_controller.cpp.o"
  "CMakeFiles/ouessant_cpu.dir/irq_controller.cpp.o.d"
  "CMakeFiles/ouessant_cpu.dir/sw_kernels.cpp.o"
  "CMakeFiles/ouessant_cpu.dir/sw_kernels.cpp.o.d"
  "libouessant_cpu.a"
  "libouessant_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
