
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/dcache.cpp" "src/cpu/CMakeFiles/ouessant_cpu.dir/dcache.cpp.o" "gcc" "src/cpu/CMakeFiles/ouessant_cpu.dir/dcache.cpp.o.d"
  "/root/repo/src/cpu/gpp.cpp" "src/cpu/CMakeFiles/ouessant_cpu.dir/gpp.cpp.o" "gcc" "src/cpu/CMakeFiles/ouessant_cpu.dir/gpp.cpp.o.d"
  "/root/repo/src/cpu/irq_controller.cpp" "src/cpu/CMakeFiles/ouessant_cpu.dir/irq_controller.cpp.o" "gcc" "src/cpu/CMakeFiles/ouessant_cpu.dir/irq_controller.cpp.o.d"
  "/root/repo/src/cpu/sw_kernels.cpp" "src/cpu/CMakeFiles/ouessant_cpu.dir/sw_kernels.cpp.o" "gcc" "src/cpu/CMakeFiles/ouessant_cpu.dir/sw_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/res/CMakeFiles/ouessant_res.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ouessant_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ouessant_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ouessant_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ouessant_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
