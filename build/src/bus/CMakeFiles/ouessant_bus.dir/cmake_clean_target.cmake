file(REMOVE_RECURSE
  "libouessant_bus.a"
)
