# Empty compiler generated dependencies file for ouessant_bus.
# This may be replaced when dependencies are built.
