
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/interconnect.cpp" "src/bus/CMakeFiles/ouessant_bus.dir/interconnect.cpp.o" "gcc" "src/bus/CMakeFiles/ouessant_bus.dir/interconnect.cpp.o.d"
  "/root/repo/src/bus/monitor.cpp" "src/bus/CMakeFiles/ouessant_bus.dir/monitor.cpp.o" "gcc" "src/bus/CMakeFiles/ouessant_bus.dir/monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ouessant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ouessant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
