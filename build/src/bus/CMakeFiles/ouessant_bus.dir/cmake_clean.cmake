file(REMOVE_RECURSE
  "CMakeFiles/ouessant_bus.dir/interconnect.cpp.o"
  "CMakeFiles/ouessant_bus.dir/interconnect.cpp.o.d"
  "CMakeFiles/ouessant_bus.dir/monitor.cpp.o"
  "CMakeFiles/ouessant_bus.dir/monitor.cpp.o.d"
  "libouessant_bus.a"
  "libouessant_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
