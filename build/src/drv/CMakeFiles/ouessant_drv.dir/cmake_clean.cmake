file(REMOVE_RECURSE
  "CMakeFiles/ouessant_drv.dir/linux_env.cpp.o"
  "CMakeFiles/ouessant_drv.dir/linux_env.cpp.o.d"
  "CMakeFiles/ouessant_drv.dir/ocp_driver.cpp.o"
  "CMakeFiles/ouessant_drv.dir/ocp_driver.cpp.o.d"
  "CMakeFiles/ouessant_drv.dir/session.cpp.o"
  "CMakeFiles/ouessant_drv.dir/session.cpp.o.d"
  "libouessant_drv.a"
  "libouessant_drv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_drv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
