file(REMOVE_RECURSE
  "libouessant_drv.a"
)
