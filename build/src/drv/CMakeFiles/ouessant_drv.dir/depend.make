# Empty dependencies file for ouessant_drv.
# This may be replaced when dependencies are built.
