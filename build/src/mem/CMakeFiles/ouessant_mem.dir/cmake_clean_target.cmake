file(REMOVE_RECURSE
  "libouessant_mem.a"
)
