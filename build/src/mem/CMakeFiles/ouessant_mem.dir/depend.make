# Empty dependencies file for ouessant_mem.
# This may be replaced when dependencies are built.
