file(REMOVE_RECURSE
  "CMakeFiles/ouessant_mem.dir/sram.cpp.o"
  "CMakeFiles/ouessant_mem.dir/sram.cpp.o.d"
  "libouessant_mem.a"
  "libouessant_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
