file(REMOVE_RECURSE
  "libouessant_fifo.a"
)
