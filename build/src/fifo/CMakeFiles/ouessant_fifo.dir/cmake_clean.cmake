file(REMOVE_RECURSE
  "CMakeFiles/ouessant_fifo.dir/bit_queue.cpp.o"
  "CMakeFiles/ouessant_fifo.dir/bit_queue.cpp.o.d"
  "CMakeFiles/ouessant_fifo.dir/width_fifo.cpp.o"
  "CMakeFiles/ouessant_fifo.dir/width_fifo.cpp.o.d"
  "libouessant_fifo.a"
  "libouessant_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
