# Empty dependencies file for ouessant_fifo.
# This may be replaced when dependencies are built.
