
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fifo/bit_queue.cpp" "src/fifo/CMakeFiles/ouessant_fifo.dir/bit_queue.cpp.o" "gcc" "src/fifo/CMakeFiles/ouessant_fifo.dir/bit_queue.cpp.o.d"
  "/root/repo/src/fifo/width_fifo.cpp" "src/fifo/CMakeFiles/ouessant_fifo.dir/width_fifo.cpp.o" "gcc" "src/fifo/CMakeFiles/ouessant_fifo.dir/width_fifo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ouessant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/res/CMakeFiles/ouessant_res.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ouessant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
