file(REMOVE_RECURSE
  "libouessant_rac.a"
)
