file(REMOVE_RECURSE
  "CMakeFiles/ouessant_rac.dir/block_rac.cpp.o"
  "CMakeFiles/ouessant_rac.dir/block_rac.cpp.o.d"
  "CMakeFiles/ouessant_rac.dir/configurable_fir.cpp.o"
  "CMakeFiles/ouessant_rac.dir/configurable_fir.cpp.o.d"
  "CMakeFiles/ouessant_rac.dir/dft.cpp.o"
  "CMakeFiles/ouessant_rac.dir/dft.cpp.o.d"
  "CMakeFiles/ouessant_rac.dir/fir.cpp.o"
  "CMakeFiles/ouessant_rac.dir/fir.cpp.o.d"
  "CMakeFiles/ouessant_rac.dir/idct.cpp.o"
  "CMakeFiles/ouessant_rac.dir/idct.cpp.o.d"
  "CMakeFiles/ouessant_rac.dir/passthrough.cpp.o"
  "CMakeFiles/ouessant_rac.dir/passthrough.cpp.o.d"
  "CMakeFiles/ouessant_rac.dir/vecadd.cpp.o"
  "CMakeFiles/ouessant_rac.dir/vecadd.cpp.o.d"
  "libouessant_rac.a"
  "libouessant_rac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_rac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
