# Empty dependencies file for ouessant_rac.
# This may be replaced when dependencies are built.
