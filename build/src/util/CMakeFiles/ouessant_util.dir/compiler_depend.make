# Empty compiler generated dependencies file for ouessant_util.
# This may be replaced when dependencies are built.
