file(REMOVE_RECURSE
  "CMakeFiles/ouessant_util.dir/reference.cpp.o"
  "CMakeFiles/ouessant_util.dir/reference.cpp.o.d"
  "CMakeFiles/ouessant_util.dir/transforms.cpp.o"
  "CMakeFiles/ouessant_util.dir/transforms.cpp.o.d"
  "libouessant_util.a"
  "libouessant_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
