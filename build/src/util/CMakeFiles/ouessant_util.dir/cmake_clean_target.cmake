file(REMOVE_RECURSE
  "libouessant_util.a"
)
