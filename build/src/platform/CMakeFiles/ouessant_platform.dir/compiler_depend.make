# Empty compiler generated dependencies file for ouessant_platform.
# This may be replaced when dependencies are built.
