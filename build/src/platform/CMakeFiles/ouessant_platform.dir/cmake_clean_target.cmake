file(REMOVE_RECURSE
  "libouessant_platform.a"
)
