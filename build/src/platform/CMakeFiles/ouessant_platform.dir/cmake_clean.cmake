file(REMOVE_RECURSE
  "CMakeFiles/ouessant_platform.dir/report.cpp.o"
  "CMakeFiles/ouessant_platform.dir/report.cpp.o.d"
  "CMakeFiles/ouessant_platform.dir/soc.cpp.o"
  "CMakeFiles/ouessant_platform.dir/soc.cpp.o.d"
  "libouessant_platform.a"
  "libouessant_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
