
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/huffman.cpp" "src/codec/CMakeFiles/ouessant_codec.dir/huffman.cpp.o" "gcc" "src/codec/CMakeFiles/ouessant_codec.dir/huffman.cpp.o.d"
  "/root/repo/src/codec/jpeg.cpp" "src/codec/CMakeFiles/ouessant_codec.dir/jpeg.cpp.o" "gcc" "src/codec/CMakeFiles/ouessant_codec.dir/jpeg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/ouessant_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ouessant_util.dir/DependInfo.cmake"
  "/root/repo/build/src/res/CMakeFiles/ouessant_res.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ouessant_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ouessant_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ouessant_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
