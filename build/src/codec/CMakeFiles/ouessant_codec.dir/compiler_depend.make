# Empty compiler generated dependencies file for ouessant_codec.
# This may be replaced when dependencies are built.
