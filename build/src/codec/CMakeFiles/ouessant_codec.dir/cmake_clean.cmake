file(REMOVE_RECURSE
  "CMakeFiles/ouessant_codec.dir/huffman.cpp.o"
  "CMakeFiles/ouessant_codec.dir/huffman.cpp.o.d"
  "CMakeFiles/ouessant_codec.dir/jpeg.cpp.o"
  "CMakeFiles/ouessant_codec.dir/jpeg.cpp.o.d"
  "libouessant_codec.a"
  "libouessant_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
