file(REMOVE_RECURSE
  "libouessant_codec.a"
)
