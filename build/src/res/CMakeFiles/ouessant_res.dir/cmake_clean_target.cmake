file(REMOVE_RECURSE
  "libouessant_res.a"
)
