file(REMOVE_RECURSE
  "CMakeFiles/ouessant_res.dir/estimate.cpp.o"
  "CMakeFiles/ouessant_res.dir/estimate.cpp.o.d"
  "libouessant_res.a"
  "libouessant_res.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_res.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
