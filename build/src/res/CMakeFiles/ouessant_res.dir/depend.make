# Empty dependencies file for ouessant_res.
# This may be replaced when dependencies are built.
