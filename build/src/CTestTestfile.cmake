# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("res")
subdirs("fifo")
subdirs("bus")
subdirs("mem")
subdirs("cpu")
subdirs("l3")
subdirs("ouessant")
subdirs("rac")
subdirs("drv")
subdirs("baseline")
subdirs("codec")
subdirs("platform")
