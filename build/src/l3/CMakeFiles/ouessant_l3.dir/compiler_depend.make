# Empty compiler generated dependencies file for ouessant_l3.
# This may be replaced when dependencies are built.
