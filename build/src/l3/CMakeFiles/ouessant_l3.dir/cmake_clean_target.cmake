file(REMOVE_RECURSE
  "libouessant_l3.a"
)
