
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/l3/asm.cpp" "src/l3/CMakeFiles/ouessant_l3.dir/asm.cpp.o" "gcc" "src/l3/CMakeFiles/ouessant_l3.dir/asm.cpp.o.d"
  "/root/repo/src/l3/core.cpp" "src/l3/CMakeFiles/ouessant_l3.dir/core.cpp.o" "gcc" "src/l3/CMakeFiles/ouessant_l3.dir/core.cpp.o.d"
  "/root/repo/src/l3/isa.cpp" "src/l3/CMakeFiles/ouessant_l3.dir/isa.cpp.o" "gcc" "src/l3/CMakeFiles/ouessant_l3.dir/isa.cpp.o.d"
  "/root/repo/src/l3/kernels.cpp" "src/l3/CMakeFiles/ouessant_l3.dir/kernels.cpp.o" "gcc" "src/l3/CMakeFiles/ouessant_l3.dir/kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ouessant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ouessant_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ouessant_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ouessant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
