file(REMOVE_RECURSE
  "CMakeFiles/ouessant_l3.dir/asm.cpp.o"
  "CMakeFiles/ouessant_l3.dir/asm.cpp.o.d"
  "CMakeFiles/ouessant_l3.dir/core.cpp.o"
  "CMakeFiles/ouessant_l3.dir/core.cpp.o.d"
  "CMakeFiles/ouessant_l3.dir/isa.cpp.o"
  "CMakeFiles/ouessant_l3.dir/isa.cpp.o.d"
  "CMakeFiles/ouessant_l3.dir/kernels.cpp.o"
  "CMakeFiles/ouessant_l3.dir/kernels.cpp.o.d"
  "libouessant_l3.a"
  "libouessant_l3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_l3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
