file(REMOVE_RECURSE
  "libouessant_baseline.a"
)
