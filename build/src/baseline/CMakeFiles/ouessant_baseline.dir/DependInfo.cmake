
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/coupled.cpp" "src/baseline/CMakeFiles/ouessant_baseline.dir/coupled.cpp.o" "gcc" "src/baseline/CMakeFiles/ouessant_baseline.dir/coupled.cpp.o.d"
  "/root/repo/src/baseline/dma.cpp" "src/baseline/CMakeFiles/ouessant_baseline.dir/dma.cpp.o" "gcc" "src/baseline/CMakeFiles/ouessant_baseline.dir/dma.cpp.o.d"
  "/root/repo/src/baseline/runners.cpp" "src/baseline/CMakeFiles/ouessant_baseline.dir/runners.cpp.o" "gcc" "src/baseline/CMakeFiles/ouessant_baseline.dir/runners.cpp.o.d"
  "/root/repo/src/baseline/slave_accel.cpp" "src/baseline/CMakeFiles/ouessant_baseline.dir/slave_accel.cpp.o" "gcc" "src/baseline/CMakeFiles/ouessant_baseline.dir/slave_accel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bus/CMakeFiles/ouessant_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ouessant_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ouessant_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/res/CMakeFiles/ouessant_res.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ouessant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ouessant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
