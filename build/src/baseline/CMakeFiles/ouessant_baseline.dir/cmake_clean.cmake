file(REMOVE_RECURSE
  "CMakeFiles/ouessant_baseline.dir/coupled.cpp.o"
  "CMakeFiles/ouessant_baseline.dir/coupled.cpp.o.d"
  "CMakeFiles/ouessant_baseline.dir/dma.cpp.o"
  "CMakeFiles/ouessant_baseline.dir/dma.cpp.o.d"
  "CMakeFiles/ouessant_baseline.dir/runners.cpp.o"
  "CMakeFiles/ouessant_baseline.dir/runners.cpp.o.d"
  "CMakeFiles/ouessant_baseline.dir/slave_accel.cpp.o"
  "CMakeFiles/ouessant_baseline.dir/slave_accel.cpp.o.d"
  "libouessant_baseline.a"
  "libouessant_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
