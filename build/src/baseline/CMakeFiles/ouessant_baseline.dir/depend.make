# Empty dependencies file for ouessant_baseline.
# This may be replaced when dependencies are built.
