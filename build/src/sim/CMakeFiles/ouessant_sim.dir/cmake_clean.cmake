file(REMOVE_RECURSE
  "CMakeFiles/ouessant_sim.dir/kernel.cpp.o"
  "CMakeFiles/ouessant_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/ouessant_sim.dir/stats.cpp.o"
  "CMakeFiles/ouessant_sim.dir/stats.cpp.o.d"
  "CMakeFiles/ouessant_sim.dir/trace.cpp.o"
  "CMakeFiles/ouessant_sim.dir/trace.cpp.o.d"
  "libouessant_sim.a"
  "libouessant_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ouessant_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
