file(REMOVE_RECURSE
  "libouessant_sim.a"
)
