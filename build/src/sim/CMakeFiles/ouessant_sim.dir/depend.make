# Empty dependencies file for ouessant_sim.
# This may be replaced when dependencies are built.
