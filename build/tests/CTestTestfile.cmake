# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_e2e_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fifo[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_rac[1]_include.cmake")
include("/root/repo/build/tests/test_drv[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_res[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_irqctl[1]_include.cmake")
include("/root/repo/build/tests/test_dcache[1]_include.cmake")
include("/root/repo/build/tests/test_l3[1]_include.cmake")
include("/root/repo/build/tests/test_huffman[1]_include.cmake")
