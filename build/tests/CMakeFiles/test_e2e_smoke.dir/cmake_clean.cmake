file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_smoke.dir/test_e2e_smoke.cpp.o"
  "CMakeFiles/test_e2e_smoke.dir/test_e2e_smoke.cpp.o.d"
  "test_e2e_smoke"
  "test_e2e_smoke.pdb"
  "test_e2e_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
