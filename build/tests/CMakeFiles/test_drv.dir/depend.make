# Empty dependencies file for test_drv.
# This may be replaced when dependencies are built.
