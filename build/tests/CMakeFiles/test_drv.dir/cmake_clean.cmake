file(REMOVE_RECURSE
  "CMakeFiles/test_drv.dir/test_drv.cpp.o"
  "CMakeFiles/test_drv.dir/test_drv.cpp.o.d"
  "test_drv"
  "test_drv.pdb"
  "test_drv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
