file(REMOVE_RECURSE
  "CMakeFiles/test_irqctl.dir/test_irqctl.cpp.o"
  "CMakeFiles/test_irqctl.dir/test_irqctl.cpp.o.d"
  "test_irqctl"
  "test_irqctl.pdb"
  "test_irqctl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irqctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
