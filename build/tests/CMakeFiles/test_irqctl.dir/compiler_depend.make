# Empty compiler generated dependencies file for test_irqctl.
# This may be replaced when dependencies are built.
