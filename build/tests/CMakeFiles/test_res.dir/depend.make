# Empty dependencies file for test_res.
# This may be replaced when dependencies are built.
