file(REMOVE_RECURSE
  "CMakeFiles/test_res.dir/test_res.cpp.o"
  "CMakeFiles/test_res.dir/test_res.cpp.o.d"
  "test_res"
  "test_res.pdb"
  "test_res[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_res.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
