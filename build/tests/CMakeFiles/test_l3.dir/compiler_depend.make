# Empty compiler generated dependencies file for test_l3.
# This may be replaced when dependencies are built.
